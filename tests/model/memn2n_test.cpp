#include "model/memn2n.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "numeric/vector_ops.hpp"

namespace mann::model {
namespace {

ModelConfig tiny_config() {
  ModelConfig c;
  c.vocab_size = 10;
  c.embedding_dim = 4;
  c.hops = 2;
  c.max_memory = 3;
  return c;
}

data::EncodedStory tiny_story() {
  data::EncodedStory s;
  s.context = {{0, 1, 2}, {3, 4}, {5, 1}};
  s.question = {6, 7};
  s.answer = 8;
  return s;
}

TEST(MemN2N, RejectsZeroDimensions) {
  ModelConfig c = tiny_config();
  c.hops = 0;
  numeric::Rng rng(1);
  EXPECT_THROW(MemN2N(c, rng), std::invalid_argument);
}

TEST(MemN2N, RejectsShapeMismatch) {
  const ModelConfig c = tiny_config();
  ModelConfig other = c;
  other.vocab_size = 5;
  numeric::Rng rng(1);
  Parameters wrong = Parameters::random(other, rng);
  EXPECT_THROW(MemN2N(c, std::move(wrong)), std::invalid_argument);
}

TEST(MemN2N, ForwardTraceShapes) {
  numeric::Rng rng(2);
  const MemN2N net(tiny_config(), rng);
  const ForwardTrace t = net.forward(tiny_story());
  EXPECT_EQ(t.memory_a.rows(), 3U);
  EXPECT_EQ(t.memory_a.cols(), 4U);
  EXPECT_EQ(t.k.size(), 3U);  // hops + 1
  EXPECT_EQ(t.a.size(), 2U);
  EXPECT_EQ(t.r.size(), 2U);
  EXPECT_EQ(t.h.size(), 2U);
  EXPECT_EQ(t.logits.size(), 10U);
  EXPECT_LT(t.prediction, 10U);
}

TEST(MemN2N, EmptyStoryThrows) {
  numeric::Rng rng(2);
  const MemN2N net(tiny_config(), rng);
  data::EncodedStory s = tiny_story();
  s.context.clear();
  EXPECT_THROW((void)net.forward(s), std::invalid_argument);
}

TEST(MemN2N, AttentionIsADistribution) {
  numeric::Rng rng(3);
  const MemN2N net(tiny_config(), rng);
  const ForwardTrace t = net.forward(tiny_story());
  for (const auto& hop_attention : t.a) {
    float sum = 0.0F;
    for (const float a : hop_attention) {
      EXPECT_GE(a, 0.0F);
      sum += a;
    }
    EXPECT_NEAR(sum, 1.0F, 1e-5F);
  }
}

TEST(MemN2N, MemoryIsBagOfWordsSum) {
  // Eq. 2: memory row = sum of embedding rows of the sentence's words.
  numeric::Rng rng(4);
  const MemN2N net(tiny_config(), rng);
  const data::EncodedStory s = tiny_story();
  const ForwardTrace t = net.forward(s);
  const auto& emb = net.params().embedding_a;
  for (std::size_t i = 0; i < s.context.size(); ++i) {
    for (std::size_t d = 0; d < 4; ++d) {
      float expected = 0.0F;
      for (const std::int32_t w : s.context[i]) {
        expected += emb(static_cast<std::size_t>(w), d);
      }
      EXPECT_NEAR(t.memory_a(i, d), expected, 1e-6F);
    }
  }
}

TEST(MemN2N, RecurrenceChainsKeyToControllerOutput) {
  // Eq. 3 (t>1): k^{t+1} == h^t.
  numeric::Rng rng(5);
  const MemN2N net(tiny_config(), rng);
  const ForwardTrace t = net.forward(tiny_story());
  for (std::size_t hop = 0; hop < 2; ++hop) {
    ASSERT_EQ(t.k[hop + 1].size(), t.h[hop].size());
    for (std::size_t d = 0; d < t.h[hop].size(); ++d) {
      EXPECT_EQ(t.k[hop + 1][d], t.h[hop][d]);
    }
  }
}

TEST(MemN2N, ControllerEquationHolds) {
  // Eq. 4: h = r + W_r k.
  numeric::Rng rng(6);
  const MemN2N net(tiny_config(), rng);
  const ForwardTrace t = net.forward(tiny_story());
  const auto wk = numeric::matvec(net.params().w_r, t.k[0]);
  for (std::size_t d = 0; d < t.h[0].size(); ++d) {
    EXPECT_NEAR(t.h[0][d], t.r[0][d] + wk[d], 1e-5F);
  }
}

TEST(MemN2N, LogitsAreOutputRowDots) {
  // Eq. 6: z_i = W_o[i,:] · h^H.
  numeric::Rng rng(7);
  const MemN2N net(tiny_config(), rng);
  const ForwardTrace t = net.forward(tiny_story());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(t.logits[i],
                numeric::dot(net.params().w_o.row(i), t.h.back()), 1e-5F);
  }
}

TEST(MemN2N, ForwardFeaturesMatchTrace) {
  numeric::Rng rng(8);
  const MemN2N net(tiny_config(), rng);
  const auto features = net.forward_features(tiny_story());
  const ForwardTrace t = net.forward(tiny_story());
  ASSERT_EQ(features.size(), t.h.back().size());
  for (std::size_t d = 0; d < features.size(); ++d) {
    EXPECT_EQ(features[d], t.h.back()[d]);
  }
}

TEST(MemN2N, MemoryTruncationKeepsMostRecent) {
  // 5 sentences into a 3-slot memory: slots hold the last 3.
  numeric::Rng rng(9);
  const MemN2N net(tiny_config(), rng);
  data::EncodedStory s = tiny_story();
  s.context = {{0}, {1}, {2}, {3}, {4}};
  const ForwardTrace t = net.forward(s);
  ASSERT_EQ(t.memory_a.rows(), 3U);
  const auto& emb = net.params().embedding_a;
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(t.memory_a(0, d), emb(2, d));
    EXPECT_EQ(t.memory_a(2, d), emb(4, d));
  }
  EXPECT_EQ(net.memory_slots(s), 3U);
}

TEST(MemN2N, DeterministicForward) {
  numeric::Rng rng(10);
  const MemN2N net(tiny_config(), rng);
  const ForwardTrace a = net.forward(tiny_story());
  const ForwardTrace b = net.forward(tiny_story());
  EXPECT_EQ(a.logits, b.logits);
  EXPECT_EQ(a.prediction, b.prediction);
}

TEST(Parameters, ZerosAndFill) {
  Parameters p = Parameters::zeros(tiny_config());
  EXPECT_EQ(p.embedding_a.rows(), 10U);
  EXPECT_EQ(p.w_r.rows(), 4U);
  p.fill(2.0F);
  EXPECT_EQ(p.w_o(0, 0), 2.0F);
  Parameters q = Parameters::zeros(tiny_config());
  q.add_scaled(p, 0.5F);
  EXPECT_EQ(q.embedding_c(3, 2), 1.0F);
}

}  // namespace
}  // namespace mann::model
