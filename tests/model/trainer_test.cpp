#include "model/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "numeric/vector_ops.hpp"

namespace mann::model {
namespace {

ModelConfig tiny_config() {
  ModelConfig c;
  c.vocab_size = 9;
  c.embedding_dim = 3;
  c.hops = 2;
  c.max_memory = 4;
  return c;
}

data::EncodedStory tiny_story() {
  data::EncodedStory s;
  s.context = {{0, 1}, {2, 3, 4}};
  s.question = {5, 6};
  s.answer = 7;
  return s;
}

/// Numerically verifies d(loss)/d(param) for every parameter matrix via
/// central finite differences. This is the ground-truth check that the
/// hand-derived backprop through Eqs. 1-6 is correct.
void check_gradients(numeric::Matrix Parameters::* member,
                     const char* label) {
  numeric::Rng rng(99);
  MemN2N net(tiny_config(), rng);
  const data::EncodedStory story = tiny_story();
  const ExampleGradients analytic = backward(net, story);

  const float eps = 1e-3F;
  numeric::Matrix& param = net.params().*member;
  const numeric::Matrix& grad = analytic.grads.*member;
  double worst = 0.0;
  for (std::size_t r = 0; r < param.rows(); ++r) {
    for (std::size_t c = 0; c < param.cols(); ++c) {
      const float saved = param(r, c);
      param(r, c) = saved + eps;
      const float loss_plus = backward(net, story).loss;
      param(r, c) = saved - eps;
      const float loss_minus = backward(net, story).loss;
      param(r, c) = saved;
      const float numeric_grad = (loss_plus - loss_minus) / (2.0F * eps);
      const float diff = std::abs(numeric_grad - grad(r, c));
      worst = std::max(worst, static_cast<double>(diff));
      EXPECT_NEAR(grad(r, c), numeric_grad, 5e-3F)
          << label << "[" << r << "," << c << "]";
    }
  }
  // Overall agreement should be tight.
  EXPECT_LT(worst, 5e-3) << label;
}

TEST(TrainerGradients, OutputWeight) {
  check_gradients(&Parameters::w_o, "w_o");
}

TEST(TrainerGradients, ControllerWeight) {
  check_gradients(&Parameters::w_r, "w_r");
}

TEST(TrainerGradients, AddressEmbedding) {
  check_gradients(&Parameters::embedding_a, "embedding_a");
}

TEST(TrainerGradients, ContentEmbedding) {
  check_gradients(&Parameters::embedding_c, "embedding_c");
}

TEST(TrainerGradients, QuestionEmbedding) {
  check_gradients(&Parameters::embedding_q, "embedding_q");
}

TEST(Trainer, LossDecreasesOnRepeatedExample) {
  numeric::Rng rng(5);
  MemN2N net(tiny_config(), rng);
  const data::EncodedStory story = tiny_story();
  const float initial_loss = backward(net, story).loss;
  for (int i = 0; i < 50; ++i) {
    const ExampleGradients g = backward(net, story);
    net.params().add_scaled(g.grads, -0.05F);
  }
  const float final_loss = backward(net, story).loss;
  EXPECT_LT(final_loss, initial_loss * 0.5F);
}

TEST(Trainer, LearnsSingleSupportingFactTask) {
  data::DatasetConfig dc;
  dc.train_stories = 300;
  dc.test_stories = 80;
  dc.seed = 77;
  const data::TaskDataset ds =
      data::build_task_dataset(data::TaskId::kSingleSupportingFact, dc);

  ModelConfig mc;
  mc.vocab_size = ds.vocab_size();
  mc.embedding_dim = 16;
  mc.hops = 3;
  mc.max_memory = 50;
  numeric::Rng rng(123);
  MemN2N net(mc, rng);

  const float before = evaluate_accuracy(net, ds.test);
  TrainConfig tc;
  tc.epochs = 15;
  tc.learning_rate = 0.02F;
  const auto history = train(net, ds.train, tc);
  const float after = evaluate_accuracy(net, ds.test);

  ASSERT_EQ(history.size(), 15U);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
  EXPECT_GT(after, before + 0.3F);
  EXPECT_GT(after, 0.6F);
}

TEST(Trainer, EmptyTrainingSetIsNoop) {
  numeric::Rng rng(1);
  MemN2N net(tiny_config(), rng);
  const auto history = train(net, {}, TrainConfig{});
  EXPECT_TRUE(history.empty());
}

TEST(Trainer, LearningRateAnneals) {
  data::DatasetConfig dc;
  dc.train_stories = 10;
  dc.test_stories = 2;
  const data::TaskDataset ds =
      data::build_task_dataset(data::TaskId::kSingleSupportingFact, dc);
  ModelConfig mc = tiny_config();
  mc.vocab_size = ds.vocab_size();
  numeric::Rng rng(2);
  MemN2N net(mc, rng);
  TrainConfig tc;
  tc.epochs = 5;
  tc.learning_rate = 0.1F;
  tc.anneal_every = 2;
  tc.anneal_factor = 0.5F;
  const auto history = train(net, ds.train, tc);
  ASSERT_EQ(history.size(), 5U);
  EXPECT_FLOAT_EQ(history[0].learning_rate, 0.1F);
  EXPECT_FLOAT_EQ(history[2].learning_rate, 0.05F);
  EXPECT_FLOAT_EQ(history[4].learning_rate, 0.025F);
}

TEST(TrainerGradients, LinearAttentionModeAlsoCorrect) {
  // The softmax-free (linear start) backward path gets its own finite-
  // difference check.
  numeric::Rng rng(98);
  MemN2N net(tiny_config(), rng);
  net.set_linear_attention(true);
  const data::EncodedStory story = tiny_story();
  const ExampleGradients analytic = backward(net, story);
  const float eps = 1e-3F;
  numeric::Matrix& param = net.params().embedding_a;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < param.cols(); ++c) {
      const float saved = param(r, c);
      param(r, c) = saved + eps;
      const float lp = backward(net, story).loss;
      param(r, c) = saved - eps;
      const float lm = backward(net, story).loss;
      param(r, c) = saved;
      EXPECT_NEAR(analytic.grads.embedding_a(r, c), (lp - lm) / (2 * eps),
                  5e-2F);
    }
  }
}

TEST(Trainer, LinearAttentionSkipsSoftmax) {
  numeric::Rng rng(4);
  MemN2N net(tiny_config(), rng);
  net.set_linear_attention(true);
  const ForwardTrace t = net.forward(tiny_story());
  float sum = 0.0F;
  for (const float a : t.a[0]) {
    sum += a;
  }
  // Raw scores do not form a distribution.
  EXPECT_NE(sum, 1.0F);
  net.set_linear_attention(false);
  const ForwardTrace d = net.forward(tiny_story());
  sum = 0.0F;
  for (const float a : d.a[0]) {
    sum += a;
  }
  EXPECT_NEAR(sum, 1.0F, 1e-5F);
}

TEST(Trainer, LinearStartEndsWithSoftmaxModel) {
  data::DatasetConfig dc;
  dc.train_stories = 30;
  dc.test_stories = 5;
  const auto ds =
      data::build_task_dataset(data::TaskId::kSingleSupportingFact, dc);
  ModelConfig mc = tiny_config();
  mc.vocab_size = ds.vocab_size();
  numeric::Rng rng(9);
  MemN2N net(mc, rng);
  TrainConfig tc;
  tc.epochs = 4;
  tc.linear_start_epochs = 2;
  (void)train(net, ds.train, tc);
  EXPECT_FALSE(net.linear_attention());
}

TEST(Trainer, EvaluateAccuracyEmptyIsZero) {
  numeric::Rng rng(1);
  const MemN2N net(tiny_config(), rng);
  EXPECT_EQ(evaluate_accuracy(net, {}), 0.0F);
}

}  // namespace
}  // namespace mann::model
