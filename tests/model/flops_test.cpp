#include "model/flops.hpp"

#include <gtest/gtest.h>

namespace mann::model {
namespace {

ModelConfig config_for_flops() {
  ModelConfig c;
  c.vocab_size = 100;
  c.embedding_dim = 20;
  c.hops = 3;
  c.max_memory = 50;
  return c;
}

data::EncodedStory story_for_flops() {
  data::EncodedStory s;
  s.context = {{1, 2, 3}, {4, 5}};  // 5 context words, 2 slots
  s.question = {6, 7};              // 2 question words
  s.answer = 8;
  return s;
}

TEST(Flops, EmbeddingCountsWordAccumulates) {
  const auto fb = count_flops(story_for_flops(), config_for_flops());
  // 2*(5 words)*E + (2 question words)*E = 10*20 + 2*20*... -> 240.
  EXPECT_EQ(fb.embedding, 2U * 5U * 20U + 2U * 20U);
}

TEST(Flops, OutputScalesWithVocab) {
  const auto fb = count_flops(story_for_flops(), config_for_flops());
  EXPECT_EQ(fb.output, 100U * (2U * 20U + 1U));
}

TEST(Flops, HopsScaleMemoryTerms) {
  ModelConfig one_hop = config_for_flops();
  one_hop.hops = 1;
  const auto fb3 = count_flops(story_for_flops(), config_for_flops());
  const auto fb1 = count_flops(story_for_flops(), one_hop);
  EXPECT_EQ(fb3.addressing, 3U * fb1.addressing);
  EXPECT_EQ(fb3.read, 3U * fb1.read);
  EXPECT_EQ(fb3.controller, 3U * fb1.controller);
  EXPECT_EQ(fb3.embedding, fb1.embedding);
  EXPECT_EQ(fb3.output, fb1.output);
}

TEST(Flops, ThresholdedReducesOnlyOutput) {
  const auto full = count_flops(story_for_flops(), config_for_flops());
  const auto ith =
      count_flops_thresholded(story_for_flops(), config_for_flops(), 10);
  EXPECT_EQ(ith.embedding, full.embedding);
  EXPECT_EQ(ith.addressing, full.addressing);
  EXPECT_EQ(ith.read, full.read);
  EXPECT_EQ(ith.controller, full.controller);
  EXPECT_EQ(ith.output, 10U * (2U * 20U + 1U));
  EXPECT_LT(ith.total(), full.total());
}

TEST(Flops, ThresholdedClampsAtVocab) {
  const auto capped =
      count_flops_thresholded(story_for_flops(), config_for_flops(), 1000);
  const auto full = count_flops(story_for_flops(), config_for_flops());
  EXPECT_EQ(capped.total(), full.total());
}

TEST(Flops, MemoryTruncationCapsSlots) {
  ModelConfig c = config_for_flops();
  c.max_memory = 1;
  data::EncodedStory s = story_for_flops();
  const auto fb = count_flops(s, c);
  // Only the last sentence (2 words) is in memory.
  EXPECT_EQ(fb.embedding, 2U * 2U * 20U + 2U * 20U);
  // addressing per hop: 2*L*E + 3L with L = 1.
  EXPECT_EQ(fb.addressing, 3U * (2U * 1U * 20U + 3U));
}

TEST(Flops, TotalIsSumOfParts) {
  const auto fb = count_flops(story_for_flops(), config_for_flops());
  EXPECT_EQ(fb.total(), fb.embedding + fb.addressing + fb.read +
                            fb.controller + fb.output);
}

}  // namespace
}  // namespace mann::model
