#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace mann::sim {
namespace {

/// Counts its own ticks; optionally marks itself busy every other cycle.
class CountingModule final : public Module {
 public:
  explicit CountingModule(std::string name) : Module(std::move(name)) {}

  void tick() override {
    ++ticks;
    if (ticks % 2 == 0) {
      mark_busy();
    } else {
      mark_stalled();
    }
    ops().add += 3;
  }

  Cycle ticks = 0;
};

TEST(Simulator, RunsUntilPredicate) {
  CountingModule m("m");
  Simulator sim;
  sim.add_module(m);
  const Cycle elapsed = sim.run_until([&] { return m.ticks >= 10; }, 1000);
  EXPECT_EQ(elapsed, 10U);
  EXPECT_EQ(sim.now(), 10U);
}

TEST(Simulator, TicksModulesInRegistrationOrder) {
  std::vector<int> order;
  class Probe final : public Module {
   public:
    Probe(std::string name, std::vector<int>& log, int id)
        : Module(std::move(name)), log_(log), id_(id) {}
    void tick() override { log_.push_back(id_); }

   private:
    std::vector<int>& log_;
    int id_;
  };
  Probe a("a", order, 1);
  Probe b("b", order, 2);
  Simulator sim;
  sim.add_module(a);
  sim.add_module(b);
  (void)sim.run_until([&] { return order.size() >= 4; }, 100);
  ASSERT_EQ(order.size(), 4U);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
  EXPECT_EQ(order[3], 2);
}

TEST(Simulator, WatchdogThrows) {
  CountingModule m("m");
  Simulator sim;
  sim.add_module(m);
  EXPECT_THROW((void)sim.run_until([] { return false; }, 50),
               std::runtime_error);
}

TEST(Simulator, StatsAccumulate) {
  CountingModule m("m");
  Simulator sim;
  sim.add_module(m);
  (void)sim.run_until([&] { return m.ticks >= 8; }, 100);
  EXPECT_EQ(m.stats().busy_cycles, 4U);
  EXPECT_EQ(m.stats().stall_cycles, 4U);
  EXPECT_EQ(m.stats().ops.add, 24U);
}

TEST(Simulator, SequentialRunsAccumulateTime) {
  CountingModule m("m");
  Simulator sim;
  sim.add_module(m);
  (void)sim.run_until([&] { return m.ticks >= 3; }, 100);
  (void)sim.run_until([&] { return m.ticks >= 7; }, 100);
  EXPECT_EQ(sim.now(), 7U);
}

TEST(Simulator, ImmediateDonePredicateRunsZeroCycles) {
  CountingModule m("m");
  Simulator sim;
  sim.add_module(m);
  EXPECT_EQ(sim.run_until([] { return true; }, 10), 0U);
  EXPECT_EQ(m.ticks, 0U);
}

TEST(OpCounts, AccumulateAndTotal) {
  OpCounts a;
  a.mac = 5;
  a.exp = 2;
  OpCounts b;
  b.mac = 1;
  b.div = 7;
  a += b;
  EXPECT_EQ(a.mac, 6U);
  EXPECT_EQ(a.div, 7U);
  EXPECT_EQ(a.total(), 6U + 2U + 7U);
}

}  // namespace
}  // namespace mann::sim
