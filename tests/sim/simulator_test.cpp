#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace mann::sim {
namespace {

/// Counts its own ticks; optionally marks itself busy every other cycle.
class CountingModule final : public Module {
 public:
  explicit CountingModule(std::string name) : Module(std::move(name)) {}

  void tick() override {
    ++ticks;
    if (ticks % 2 == 0) {
      mark_busy();
    } else {
      mark_stalled();
    }
    ops().add += 3;
  }

  Cycle ticks = 0;
};

TEST(Simulator, RunsUntilPredicate) {
  CountingModule m("m");
  Simulator sim;
  sim.add_module(m);
  const Cycle elapsed = sim.run_until([&] { return m.ticks >= 10; }, 1000);
  EXPECT_EQ(elapsed, 10U);
  EXPECT_EQ(sim.now(), 10U);
}

TEST(Simulator, TicksModulesInRegistrationOrder) {
  std::vector<int> order;
  class Probe final : public Module {
   public:
    Probe(std::string name, std::vector<int>& log, int id)
        : Module(std::move(name)), log_(log), id_(id) {}
    void tick() override { log_.push_back(id_); }

   private:
    std::vector<int>& log_;
    int id_;
  };
  Probe a("a", order, 1);
  Probe b("b", order, 2);
  Simulator sim;
  sim.add_module(a);
  sim.add_module(b);
  (void)sim.run_until([&] { return order.size() >= 4; }, 100);
  ASSERT_EQ(order.size(), 4U);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
  EXPECT_EQ(order[3], 2);
}

TEST(Simulator, WatchdogThrows) {
  CountingModule m("m");
  Simulator sim;
  sim.add_module(m);
  EXPECT_THROW((void)sim.run_until([] { return false; }, 50),
               std::runtime_error);
}

TEST(Simulator, StatsAccumulate) {
  CountingModule m("m");
  Simulator sim;
  sim.add_module(m);
  (void)sim.run_until([&] { return m.ticks >= 8; }, 100);
  EXPECT_EQ(m.stats().busy_cycles, 4U);
  EXPECT_EQ(m.stats().stall_cycles, 4U);
  EXPECT_EQ(m.stats().ops.add, 24U);
}

TEST(Simulator, SequentialRunsAccumulateTime) {
  CountingModule m("m");
  Simulator sim;
  sim.add_module(m);
  (void)sim.run_until([&] { return m.ticks >= 3; }, 100);
  (void)sim.run_until([&] { return m.ticks >= 7; }, 100);
  EXPECT_EQ(sim.now(), 7U);
}

TEST(Simulator, ImmediateDonePredicateRunsZeroCycles) {
  CountingModule m("m");
  Simulator sim;
  sim.add_module(m);
  EXPECT_EQ(sim.run_until([] { return true; }, 10), 0U);
  EXPECT_EQ(m.ticks, 0U);
}

/// Acts only at scheduled cycles; between them it reports the next one,
/// letting run_events jump the gap.
class EventModule final : public Module {
 public:
  EventModule(std::string name, const Simulator& clock,
              std::vector<Cycle> events)
      : Module(std::move(name)), clock_(clock), events_(std::move(events)) {}

  void tick() override {
    ++ticks;
    if (next_ < events_.size() && events_[next_] <= clock_.now()) {
      fired.push_back(clock_.now());
      ++next_;
    }
  }

  [[nodiscard]] std::optional<Cycle> next_activity() const override {
    return next_ < events_.size() ? events_[next_] : kNever;
  }

  Cycle ticks = 0;
  std::vector<Cycle> fired;

 private:
  const Simulator& clock_;
  std::vector<Cycle> events_;
  std::size_t next_ = 0;
};

TEST(Simulator, RunEventsSkipsQuiescentGaps) {
  Simulator sim;
  EventModule m("m", sim, {5, 1000, 100'000});
  sim.add_module(m);
  (void)sim.run_events([&] { return m.fired.size() >= 3; }, 1'000'000);
  // Every event observed at its exact cycle…
  ASSERT_EQ(m.fired.size(), 3U);
  EXPECT_EQ(m.fired[0], 5U);
  EXPECT_EQ(m.fired[1], 1000U);
  EXPECT_EQ(m.fired[2], 100'000U);
  // …but the clock jumped the dead stretches instead of ticking them.
  EXPECT_LT(m.ticks, 10U);
  EXPECT_EQ(sim.now(), 100'001U);
}

TEST(Simulator, RunEventsFallsBackWhenAnyModuleIsUnskippable) {
  Simulator sim;
  EventModule events("e", sim, {50});
  CountingModule dense("d");  // next_activity() = nullopt: tick every cycle
  sim.add_module(events);
  sim.add_module(dense);
  (void)sim.run_events([&] { return !events.fired.empty(); }, 1000);
  EXPECT_EQ(dense.ticks, 51U);  // cycles 0..50, no skipping
  EXPECT_EQ(sim.now(), 51U);
}

TEST(Simulator, RunEventsWatchdogStillFires) {
  Simulator sim;
  EventModule m("m", sim, {});  // permanently idle, done never true
  sim.add_module(m);
  EXPECT_THROW((void)sim.run_events([] { return false; }, 100),
               std::runtime_error);
}

TEST(Simulator, AdvanceReplaysTimeWithoutTicking) {
  Simulator sim;
  CountingModule counting("count");
  sim.add_module(counting);

  // The cheap timing-replay path: the clock lands exactly where a full
  // simulation of the recorded stretch would, but no module runs.
  sim.advance(1'000);
  EXPECT_EQ(sim.now(), 1'000U);
  EXPECT_EQ(counting.ticks, 0U);

  // Replayed and simulated time compose on one clock.
  (void)sim.run_until([&] { return counting.ticks >= 5; }, 100);
  EXPECT_EQ(sim.now(), 1'005U);
}

TEST(OpCounts, AccumulateAndTotal) {
  OpCounts a;
  a.mac = 5;
  a.exp = 2;
  OpCounts b;
  b.mac = 1;
  b.div = 7;
  a += b;
  EXPECT_EQ(a.mac, 6U);
  EXPECT_EQ(a.div, 7U);
  EXPECT_EQ(a.total(), 6U + 2U + 7U);
}

}  // namespace
}  // namespace mann::sim
