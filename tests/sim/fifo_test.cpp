#include "sim/fifo.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mann::sim {
namespace {

TEST(Fifo, RejectsZeroCapacity) {
  EXPECT_THROW(Fifo<int>("bad", 0), std::invalid_argument);
}

TEST(Fifo, StartsEmpty) {
  Fifo<int> f("f", 4);
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.full());
  EXPECT_EQ(f.size(), 0U);
  EXPECT_EQ(f.peek(), nullptr);
  EXPECT_FALSE(f.try_pop().has_value());
}

TEST(Fifo, PushPopFifoOrder) {
  Fifo<int> f("f", 4);
  f.push(1);
  f.push(2);
  f.push(3);
  EXPECT_EQ(f.try_pop().value(), 1);
  EXPECT_EQ(f.try_pop().value(), 2);
  EXPECT_EQ(f.try_pop().value(), 3);
}

TEST(Fifo, FullBehaviour) {
  Fifo<int> f("f", 2);
  EXPECT_TRUE(f.try_push(1));
  EXPECT_TRUE(f.try_push(2));
  EXPECT_TRUE(f.full());
  EXPECT_FALSE(f.try_push(3));
  EXPECT_THROW(f.push(3), std::logic_error);
  EXPECT_EQ(f.stats().full_rejects, 2U);  // try_push + push both rejected
}

TEST(Fifo, PeekDoesNotConsume) {
  Fifo<int> f("f", 2);
  f.push(42);
  ASSERT_NE(f.peek(), nullptr);
  EXPECT_EQ(*f.peek(), 42);
  EXPECT_EQ(f.size(), 1U);
  EXPECT_EQ(f.try_pop().value(), 42);
}

TEST(Fifo, StatsTrackTraffic) {
  Fifo<int> f("f", 3);
  f.push(1);
  f.push(2);
  (void)f.try_pop();
  f.push(3);
  f.push(4);  // occupancy 3 now
  const FifoStats& st = f.stats();
  EXPECT_EQ(st.pushes, 4U);
  EXPECT_EQ(st.pops, 1U);
  EXPECT_EQ(st.max_occupancy, 3U);
}

TEST(Fifo, BackpressureRoundTrip) {
  // Fill, drain, refill: capacity invariant maintained throughout.
  Fifo<int> f("f", 4);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(f.try_push(i));
    }
    EXPECT_TRUE(f.full());
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(f.try_pop().value(), i);
    }
    EXPECT_TRUE(f.empty());
  }
}

}  // namespace
}  // namespace mann::sim
