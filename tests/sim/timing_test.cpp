#include "sim/timing.hpp"

#include <gtest/gtest.h>

namespace mann::sim {
namespace {

TEST(Timing, CeilDiv) {
  EXPECT_EQ(ceil_div(8, 8), 1U);
  EXPECT_EQ(ceil_div(9, 8), 2U);
  EXPECT_EQ(ceil_div(0, 8), 0U);
  EXPECT_EQ(ceil_div(1, 1), 1U);
}

TEST(Timing, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0U);
  EXPECT_EQ(ceil_log2(2), 1U);
  EXPECT_EQ(ceil_log2(8), 3U);
  EXPECT_EQ(ceil_log2(9), 4U);
}

TEST(Timing, TreeLatencyTracksWidth) {
  DatapathTiming t;
  t.lane_width = 8;
  EXPECT_EQ(t.tree_latency(), 3U);
  t.lane_width = 16;
  EXPECT_EQ(t.tree_latency(), 4U);
  t.lane_width = 1;
  EXPECT_EQ(t.tree_latency(), 0U);
}

TEST(Timing, DotCyclesPipelined) {
  DatapathTiming t;
  t.lane_width = 8;
  // 24 elements: 3 issue cycles + 3 drain.
  EXPECT_EQ(t.dot_cycles(24), 6U);
  EXPECT_EQ(t.dot_ii(24), 3U);
  // Short vector still needs >= 1 issue cycle.
  EXPECT_EQ(t.dot_ii(2), 1U);
}

TEST(Timing, WiderTreeIsFaster) {
  DatapathTiming narrow;
  narrow.lane_width = 4;
  DatapathTiming wide;
  wide.lane_width = 32;
  EXPECT_GT(narrow.dot_cycles(64), wide.dot_cycles(64));
}

TEST(Timing, ExpBlockPipelines) {
  DatapathTiming t;
  t.exp_latency = 3;
  t.exp_ii = 1;
  EXPECT_EQ(t.exp_block(0), 0U);
  EXPECT_EQ(t.exp_block(1), 4U);
  // Each extra element adds one II cycle.
  EXPECT_EQ(t.exp_block(10), 13U);
}

TEST(Timing, DivBlockUsesInitiationInterval) {
  DatapathTiming t;
  t.div_latency = 12;
  t.div_ii = 4;
  EXPECT_EQ(t.div_block(0), 0U);
  EXPECT_EQ(t.div_block(1), 13U);
  EXPECT_EQ(t.div_block(5), 4U * 4U + 13U);
}

}  // namespace
}  // namespace mann::sim
