#include "runtime/measurement.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace mann::runtime {
namespace {

/// Shared prepared task (training once per suite).
class MeasurementFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PrepareConfig cfg = default_prepare_config();
    cfg.dataset.train_stories = 450;
    cfg.dataset.test_stories = 60;
    cfg.train.epochs = 20;
    artifacts_ = new TaskArtifacts(
        prepare_task(data::TaskId::kSingleSupportingFact, cfg));
  }

  static void TearDownTestSuite() {
    delete artifacts_;
    artifacts_ = nullptr;
  }

  static TaskArtifacts* artifacts_;
};

TaskArtifacts* MeasurementFixture::artifacts_ = nullptr;

TEST_F(MeasurementFixture, PrepareProducesUsableModel) {
  EXPECT_GT(artifacts_->test_accuracy, 0.5F);
  // rho = 1.0: ITH accuracy within a whisker of the plain model.
  EXPECT_NEAR(artifacts_->ith_test_accuracy, artifacts_->test_accuracy,
              0.02F);
  EXPECT_GT(artifacts_->ith.active_classes(), 0U);
}

TEST_F(MeasurementFixture, BaselineRowsHaveExpectedShape) {
  const MeasurementRow cpu = measure_baseline(cpu_baseline(), *artifacts_);
  const MeasurementRow gpu = measure_baseline(gpu_baseline(), *artifacts_);
  EXPECT_EQ(cpu.config_name, "CPU");
  EXPECT_GT(cpu.energy.seconds, 0.0);
  EXPECT_GT(cpu.energy.flops, 0U);
  EXPECT_NEAR(cpu.accuracy, artifacts_->test_accuracy, 1e-5);
  EXPECT_NEAR(gpu.accuracy, artifacts_->test_accuracy, 1e-5);
}

TEST_F(MeasurementFixture, FpgaRowReflectsConfiguration) {
  FpgaRunOptions opt;
  opt.clock_hz = 50.0e6;
  opt.ith = true;
  const MeasurementRow row = measure_fpga(*artifacts_, opt);
  EXPECT_EQ(row.config_name, "FPGA 50 MHz + ITH");
  EXPECT_GT(row.energy.seconds, 0.0);
  EXPECT_GT(row.energy.watts, 10.0);
  EXPECT_LT(row.energy.watts, 25.0);
  EXPECT_GT(row.early_exit_rate, 0.0);
  EXPECT_LT(row.mean_output_probes,
            static_cast<double>(artifacts_->dataset.vocab_size()));
  EXPECT_GT(row.link_active_seconds, 0.0);
  EXPECT_LT(row.link_active_seconds, row.energy.seconds);
}

TEST_F(MeasurementFixture, FpgaBeatsBaselinesOnEnergyEfficiency) {
  // The paper's headline: FPGA FLOPS/kJ >> GPU FLOPS/kJ.
  const MeasurementRow gpu =
      measure_baseline(gpu_baseline(), *artifacts_, 100);
  FpgaRunOptions opt;
  opt.clock_hz = 100.0e6;
  opt.repetitions = 100;
  const MeasurementRow fpga = measure_fpga(*artifacts_, opt);
  EXPECT_GT(fpga.energy.flops_per_kj(), 5.0 * gpu.energy.flops_per_kj());
}

TEST_F(MeasurementFixture, RepetitionsScaleTimeAndFlops) {
  FpgaRunOptions opt;
  opt.repetitions = 1;
  const MeasurementRow once = measure_fpga(*artifacts_, opt);
  opt.repetitions = 5;
  const MeasurementRow five = measure_fpga(*artifacts_, opt);
  EXPECT_NEAR(five.energy.seconds, 5.0 * once.energy.seconds, 1e-9);
  EXPECT_EQ(five.energy.flops, 5U * once.energy.flops);
  EXPECT_NEAR(five.energy.watts, once.energy.watts, 1e-9);
}

TEST_F(MeasurementFixture, CustomLinkOverrideTakesEffect) {
  FpgaRunOptions slow_link;
  slow_link.link = accel::HostLinkConfig{.words_per_second = 2.0e5,
                                         .per_story_latency = 4.0e-6,
                                         .result_latency = 2.0e-6};
  FpgaRunOptions fast_link;
  fast_link.link = accel::HostLinkConfig{.words_per_second = 1.0e9,
                                         .per_story_latency = 0.0,
                                         .result_latency = 0.0};
  const MeasurementRow slow = measure_fpga(*artifacts_, slow_link);
  const MeasurementRow fast = measure_fpga(*artifacts_, fast_link);
  EXPECT_LT(fast.energy.seconds, slow.energy.seconds);
}

TEST(Measurement, CachedSuitePreparationRoundTrips) {
  // Tiny configuration: first call trains and writes the cache, second
  // call loads it; both must yield byte-identical models.
  PrepareConfig cfg = default_prepare_config();
  cfg.dataset.train_stories = 12;
  cfg.dataset.test_stories = 4;
  cfg.dataset.seed = 777;
  cfg.model.embedding_dim = 6;
  cfg.train.epochs = 2;

  const std::string dir = ::testing::TempDir() + "/mann_cache_test";
  std::filesystem::remove_all(dir);
  const auto first = prepare_suite_cached(cfg, dir);
  const auto second = prepare_suite_cached(cfg, dir);
  ASSERT_EQ(first.size(), 20U);
  ASSERT_EQ(second.size(), 20U);
  for (std::size_t t = 0; t < 20; ++t) {
    EXPECT_EQ(first[t].model.params().w_o, second[t].model.params().w_o)
        << "task " << t + 1;
    EXPECT_EQ(first[t].test_accuracy, second[t].test_accuracy);
  }
  std::filesystem::remove_all(dir);
}

TEST(Measurement, DefaultPrepareConfigIsPaperLike) {
  const PrepareConfig cfg = default_prepare_config();
  EXPECT_EQ(cfg.model.hops, 3U);
  EXPECT_FLOAT_EQ(cfg.ith.rho, 1.0F);
  EXPECT_GT(cfg.model.embedding_dim, 0U);
}

}  // namespace
}  // namespace mann::runtime
