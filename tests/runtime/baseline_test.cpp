#include "runtime/baseline.hpp"

#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "model/trainer.hpp"

namespace mann::runtime {
namespace {

struct Prepared {
  data::TaskDataset dataset;
  model::MemN2N model;
};

Prepared prepare() {
  data::DatasetConfig dc;
  dc.train_stories = 60;
  dc.test_stories = 30;
  data::TaskDataset ds =
      data::build_task_dataset(data::TaskId::kSingleSupportingFact, dc);
  model::ModelConfig mc;
  mc.vocab_size = ds.vocab_size();
  // Realistic arithmetic volume per story: the CPU-vs-GPU ordering is a
  // statement about the dispatch-bound regime at bAbI scale, so the test
  // model must not be degenerate-small.
  mc.embedding_dim = 32;
  mc.hops = 3;
  numeric::Rng rng(3);
  model::MemN2N net(mc, rng);
  return {std::move(ds), std::move(net)};
}

TEST(Baseline, ConfigsHavePaperPowerEnvelopes) {
  EXPECT_NEAR(cpu_baseline().active_watts, 23.28, 1e-9);
  EXPECT_NEAR(gpu_baseline().active_watts, 45.36, 1e-9);
}

TEST(Baseline, DispatchesCountFollowsHops) {
  model::ModelConfig c;
  c.hops = 3;
  EXPECT_EQ(dispatches_per_story(c), 3U + 15U + 2U);
  c.hops = 1;
  EXPECT_EQ(dispatches_per_story(c), 3U + 5U + 2U);
}

TEST(Baseline, FunctionalAccuracyMatchesModel) {
  const Prepared p = prepare();
  const BaselineResult r =
      run_baseline(cpu_baseline(), p.model, p.dataset.test);
  const float ref = model::evaluate_accuracy(p.model, p.dataset.test);
  EXPECT_NEAR(r.accuracy(), ref, 1e-6);
  EXPECT_EQ(r.stories, p.dataset.test.size());
}

TEST(Baseline, TimeScalesWithRepetitions) {
  const Prepared p = prepare();
  const auto cfg = cpu_baseline();
  const BaselineResult once = run_baseline(cfg, p.model, p.dataset.test, 1);
  const BaselineResult ten = run_baseline(cfg, p.model, p.dataset.test, 10);
  const double once_loop = once.energy.seconds - cfg.setup_seconds;
  const double ten_loop = ten.energy.seconds - cfg.setup_seconds;
  EXPECT_NEAR(ten_loop, 10.0 * once_loop, 1e-9);
  EXPECT_EQ(ten.energy.flops, 10U * once.energy.flops);
}

TEST(Baseline, GpuFasterPerStoryButHungrier) {
  // The paper's regime: GPU slightly faster than CPU (1.07x in Table I,
  // once setup is amortized over the long measurement), at ~2x the power.
  const Prepared p = prepare();
  const BaselineResult cpu =
      run_baseline(cpu_baseline(), p.model, p.dataset.test, 2000);
  const BaselineResult gpu =
      run_baseline(gpu_baseline(), p.model, p.dataset.test, 2000);
  // Compare steady-state loop time (setup amortizes over the paper's long
  // measurement; at unit-test scale it would dominate the comparison).
  const double cpu_loop =
      cpu.energy.seconds - cpu_baseline().setup_seconds;
  const double gpu_loop =
      gpu.energy.seconds - gpu_baseline().setup_seconds;
  EXPECT_LT(gpu_loop, cpu_loop);
  EXPECT_GT(gpu_loop, cpu_loop * 0.5);
  EXPECT_GT(gpu.energy.watts, cpu.energy.watts);
}

TEST(Baseline, EmptyWorkloadChargesSetupOnly) {
  const Prepared p = prepare();
  const auto cfg = gpu_baseline();
  const BaselineResult r = run_baseline(cfg, p.model, {});
  EXPECT_DOUBLE_EQ(r.energy.seconds, cfg.setup_seconds);
  EXPECT_EQ(r.energy.flops, 0U);
  EXPECT_EQ(r.stories, 0U);
}

}  // namespace
}  // namespace mann::runtime
