#include "accel/stream.hpp"

#include <gtest/gtest.h>

namespace mann::accel {
namespace {

data::EncodedStory story() {
  data::EncodedStory s;
  s.context = {{1, 2}, {3}};
  s.question = {4, 5};
  s.answer = 6;
  return s;
}

TEST(Stream, EncodeStoryStructure) {
  const auto words = encode_story(story());
  // start, (sent,1,2), (sent,3), qstart, 4, 5, end = 10 words.
  ASSERT_EQ(words.size(), 10U);
  EXPECT_EQ(words[0].op, StreamOp::kStoryStart);
  EXPECT_EQ(words[1].op, StreamOp::kSentenceStart);
  EXPECT_EQ(words[2], (StreamWord{StreamOp::kContextWord, 1}));
  EXPECT_EQ(words[3], (StreamWord{StreamOp::kContextWord, 2}));
  EXPECT_EQ(words[4].op, StreamOp::kSentenceStart);
  EXPECT_EQ(words[5], (StreamWord{StreamOp::kContextWord, 3}));
  EXPECT_EQ(words[6].op, StreamOp::kQuestionStart);
  EXPECT_EQ(words[7], (StreamWord{StreamOp::kQuestionWord, 4}));
  EXPECT_EQ(words[8], (StreamWord{StreamOp::kQuestionWord, 5}));
  EXPECT_EQ(words[9].op, StreamOp::kEndOfStory);
}

TEST(Stream, EncodeWorkloadPrependsModelWords) {
  const std::vector<data::EncodedStory> stories = {story(), story()};
  const auto words = encode_workload(7, stories);
  ASSERT_EQ(words.size(), 7U + 2U * 10U);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(words[i].op, StreamOp::kModelWord);
  }
  EXPECT_EQ(words[7].op, StreamOp::kStoryStart);
  EXPECT_EQ(words[17].op, StreamOp::kStoryStart);
}

TEST(Stream, EmptyWorkload) {
  const auto words = encode_workload(0, {});
  EXPECT_TRUE(words.empty());
}

}  // namespace
}  // namespace mann::accel
