// Property tests: configuration knobs that only affect *timing* (lane
// width, FIFO depth, link rate, synchronous vs pipelined host) must never
// change what the accelerator computes; and the device must track the
// float model across structurally different task families.
#include <gtest/gtest.h>

#include <tuple>

#include "accel/accelerator.hpp"
#include "data/dataset.hpp"
#include "model/trainer.hpp"

namespace mann::accel {
namespace {

/// One shared lightly-trained model (enough structure for nontrivial
/// attention, fast to build).
struct Shared {
  data::TaskDataset dataset;
  model::MemN2N model;
  DeviceProgram program;
};

const Shared& shared() {
  static const Shared s = [] {
    data::DatasetConfig dc;
    dc.train_stories = 150;
    dc.test_stories = 40;
    dc.seed = 55;
    data::TaskDataset ds =
        data::build_task_dataset(data::TaskId::kTwoSupportingFacts, dc);
    model::ModelConfig mc;
    mc.vocab_size = ds.vocab_size();
    mc.embedding_dim = 16;
    mc.hops = 2;
    numeric::Rng rng(5);
    model::MemN2N net(mc, rng);
    model::TrainConfig tc;
    tc.epochs = 6;
    model::train(net, ds.train, tc);
    DeviceProgram prog = compile_model(net);
    return Shared{std::move(ds), std::move(net), std::move(prog)};
  }();
  return s;
}

std::vector<std::int32_t> run_predictions(const AccelConfig& cfg) {
  const Accelerator device(cfg, shared().program);
  const RunResult run = device.run(shared().dataset.test);
  std::vector<std::int32_t> preds;
  preds.reserve(run.stories.size());
  for (const StoryOutcome& s : run.stories) {
    preds.push_back(s.prediction);
  }
  return preds;
}

// ---- timing-knob invariance --------------------------------------------------

class TimingInvariance
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(TimingInvariance, PredictionsIndependentOfLaneAndFifo) {
  AccelConfig reference;
  const auto baseline = run_predictions(reference);

  AccelConfig cfg;
  cfg.timing.lane_width = std::get<0>(GetParam());
  cfg.fifo_depth = std::get<1>(GetParam());
  EXPECT_EQ(run_predictions(cfg), baseline);
}

INSTANTIATE_TEST_SUITE_P(
    LaneFifo, TimingInvariance,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{8},
                                         std::size_t{32}),
                       ::testing::Values(std::size_t{2}, std::size_t{16},
                                         std::size_t{64})),
    [](const auto& param_info) {
      return "lane" + std::to_string(std::get<0>(param_info.param)) +
             "_fifo" + std::to_string(std::get<1>(param_info.param));
    });

TEST(TimingInvarianceExtra, LinkRateAndSyncModeDoNotChangeResults) {
  AccelConfig reference;
  const auto baseline = run_predictions(reference);

  AccelConfig slow;
  slow.link.words_per_second = 2.0e5;
  EXPECT_EQ(run_predictions(slow), baseline);

  AccelConfig pipelined;
  pipelined.link.synchronous_stories = false;
  EXPECT_EQ(run_predictions(pipelined), baseline);

  AccelConfig fast_clock;
  fast_clock.clock_hz = 300.0e6;
  EXPECT_EQ(run_predictions(fast_clock), baseline);
}

TEST(TimingInvarianceExtra, PipelinedHostIsNeverSlowerInWallTime) {
  AccelConfig sync;
  AccelConfig async = sync;
  async.link.synchronous_stories = false;
  const Accelerator a(sync, shared().program);
  const Accelerator b(async, shared().program);
  const double t_sync = a.run(shared().dataset.test).seconds;
  const double t_async = b.run(shared().dataset.test).seconds;
  EXPECT_LE(t_async, t_sync + 1e-9);
}

// ---- device-vs-float agreement across task families ---------------------------

class TaskAgreement : public ::testing::TestWithParam<data::TaskId> {};

TEST_P(TaskAgreement, DeviceTracksFloatModel) {
  data::DatasetConfig dc;
  dc.train_stories = 120;
  dc.test_stories = 30;
  dc.seed = 91;
  const data::TaskDataset ds = data::build_task_dataset(GetParam(), dc);
  model::ModelConfig mc;
  mc.vocab_size = ds.vocab_size();
  mc.embedding_dim = 16;
  mc.hops = 2;
  numeric::Rng rng(6);
  model::MemN2N net(mc, rng);
  model::TrainConfig tc;
  tc.epochs = 5;
  model::train(net, ds.train, tc);

  const Accelerator device(AccelConfig{}, compile_model(net));
  const RunResult run = device.run(ds.test);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < ds.test.size(); ++i) {
    if (run.stories[i].prediction ==
        static_cast<std::int32_t>(net.predict(ds.test[i]))) {
      ++agree;
    }
  }
  // Q16.16 vs float: rare near-tie flips only.
  EXPECT_GE(agree, ds.test.size() - 2);
}

INSTANTIATE_TEST_SUITE_P(
    FiveFamilies, TaskAgreement,
    ::testing::Values(data::TaskId::kSingleSupportingFact,
                      data::TaskId::kYesNoQuestions,
                      data::TaskId::kCounting,
                      data::TaskId::kBasicDeduction,
                      data::TaskId::kPathFinding),
    [](const ::testing::TestParamInfo<data::TaskId>& param_info) {
      return "qa" + std::to_string(data::task_number(param_info.param));
    });

}  // namespace
}  // namespace mann::accel
