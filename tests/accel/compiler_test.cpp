#include "accel/compiler.hpp"

#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "model/trainer.hpp"

namespace mann::accel {
namespace {

model::MemN2N make_model() {
  model::ModelConfig c;
  c.vocab_size = 11;
  c.embedding_dim = 6;
  c.hops = 2;
  c.max_memory = 8;
  numeric::Rng rng(4);
  return model::MemN2N(c, rng);
}

TEST(Compiler, CopiesDimensions) {
  const auto model = make_model();
  const DeviceProgram prog = compile_model(model);
  EXPECT_EQ(prog.vocab_size, 11U);
  EXPECT_EQ(prog.embedding_dim, 6U);
  EXPECT_EQ(prog.hops, 2U);
  EXPECT_EQ(prog.max_memory, 8U);
  EXPECT_EQ(prog.emb_a.rows(), 11U);
  EXPECT_EQ(prog.emb_a.cols(), 6U);
  EXPECT_EQ(prog.w_r.rows(), 6U);
  EXPECT_EQ(prog.w_o.rows(), 11U);
}

TEST(Compiler, NoIthTablesWithoutCalibration) {
  const DeviceProgram prog = compile_model(make_model());
  EXPECT_FALSE(prog.has_ith_tables());
  EXPECT_TRUE(prog.thresholds.empty());
  EXPECT_TRUE(prog.probe_order.empty());
}

TEST(Compiler, ModelWordsCountsAllWeights) {
  const DeviceProgram prog = compile_model(make_model());
  const std::size_t expected = 3U * 11U * 6U + 6U * 6U + 11U * 6U;
  EXPECT_EQ(prog.model_words(), expected);
}

TEST(Compiler, QuantizationWithinLsb) {
  const auto model = make_model();
  const DeviceProgram prog = compile_model(model);
  const float lsb = 1.0F / 65536.0F;
  for (std::size_t r = 0; r < 11; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_NEAR(prog.w_o(r, c).to_float(), model.params().w_o(r, c),
                  0.5F * lsb + 1e-7F);
    }
  }
}

TEST(Compiler, IthTablesIncluded) {
  // Build a real calibration on a tiny trained model.
  data::DatasetConfig dc;
  dc.train_stories = 120;
  dc.test_stories = 20;
  const auto ds =
      data::build_task_dataset(data::TaskId::kSingleSupportingFact, dc);
  model::ModelConfig mc;
  mc.vocab_size = ds.vocab_size();
  mc.embedding_dim = 12;
  mc.hops = 2;
  numeric::Rng rng(8);
  model::MemN2N net(mc, rng);
  model::TrainConfig tc;
  tc.epochs = 8;
  model::train(net, ds.train, tc);
  const auto ith =
      core::InferenceThresholding::calibrate(net, ds.train, {});

  const DeviceProgram prog = compile_model(net, &ith);
  ASSERT_TRUE(prog.has_ith_tables());
  ASSERT_EQ(prog.thresholds.size(), mc.vocab_size);
  ASSERT_EQ(prog.probe_order.size(), mc.vocab_size);
  // Infinite thresholds become the saturated fx max.
  for (std::size_t i = 0; i < mc.vocab_size; ++i) {
    if (ith.thresholds()[i] == core::InferenceThresholding::kNoThreshold) {
      EXPECT_EQ(prog.thresholds[i], Fx::max());
    } else {
      EXPECT_NEAR(prog.thresholds[i].to_float(), ith.thresholds()[i],
                  1e-3F);
    }
    EXPECT_EQ(prog.probe_order[i],
              static_cast<std::int32_t>(ith.probe_order()[i]));
  }
  // ITH tables add to the wire size.
  EXPECT_EQ(prog.model_words(),
            compile_model(net).model_words() + 2U * mc.vocab_size);
}

}  // namespace
}  // namespace mann::accel
