// Cross-run persistence of ServiceCycleCache: round-trips must be
// bit-exact (the serving stack's sequential-vs-parallel identity gate
// replays persisted entries), and a bad file must never crash or
// half-load — a missing, truncated, corrupted or version-mismatched
// cache file means a cold start, nothing worse.
#include "accel/service_cycle_cache.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/compiler.hpp"
#include "model/memn2n.hpp"
#include "numeric/random.hpp"

namespace mann::accel {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A RunResult with every serialized field set to a distinctive value,
/// including doubles that do not round-trip through decimal text — the
/// round-trip test is only meaningful if nothing stays at its default.
RunResult rich_result(std::uint64_t salt) {
  RunResult r;
  r.stories.resize(3);
  for (std::size_t i = 0; i < r.stories.size(); ++i) {
    r.stories[i].prediction = static_cast<std::int32_t>(salt + i) - 1;
    r.stories[i].output_probes = 2 + i;
    r.stories[i].early_exit = (i % 2) == 0;
    r.stories[i].finish_cycle = 1000 * salt + i;
  }
  r.total_cycles = 123456 + salt;
  r.seconds = 0.1 + static_cast<double>(salt) / 3.0;  // non-terminating
  r.modules.resize(2);
  r.modules[0].name = "ip_module";
  r.modules[0].stats.busy_cycles = 77 + salt;
  r.modules[0].stats.stall_cycles = 5;
  r.modules[0].stats.ops.mac = 11;
  r.modules[0].stats.ops.add = 12;
  r.modules[0].stats.ops.exp = 13;
  r.modules[0].stats.ops.div = 14;
  r.modules[0].stats.ops.mem_read = 15;
  r.modules[0].stats.ops.mem_write = 16;
  r.modules[0].stats.ops.compare = 17;
  r.modules[1].name = "oc";
  r.modules[1].stats.busy_cycles = 88;
  r.total_ops.mac = 21 + salt;
  r.total_ops.mem_write = 22;
  r.fifo_in_stats.pushes = 31;
  r.fifo_in_stats.pops = 32;
  r.fifo_in_stats.full_rejects = 33;
  r.fifo_in_stats.max_occupancy = 34;
  r.fifo_out_stats.pushes = 41 + salt;
  r.link_active_cycles = 51 + salt;
  r.stream_words = 61 + salt;
  return r;
}

void expect_bit_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  // Bit equality, not EXPECT_DOUBLE_EQ: persistence stores raw bits.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.seconds),
            std::bit_cast<std::uint64_t>(b.seconds));
  ASSERT_EQ(a.stories.size(), b.stories.size());
  for (std::size_t i = 0; i < a.stories.size(); ++i) {
    EXPECT_EQ(a.stories[i].prediction, b.stories[i].prediction);
    EXPECT_EQ(a.stories[i].output_probes, b.stories[i].output_probes);
    EXPECT_EQ(a.stories[i].early_exit, b.stories[i].early_exit);
    EXPECT_EQ(a.stories[i].finish_cycle, b.stories[i].finish_cycle);
  }
  ASSERT_EQ(a.modules.size(), b.modules.size());
  for (std::size_t i = 0; i < a.modules.size(); ++i) {
    EXPECT_EQ(a.modules[i].name, b.modules[i].name);
    EXPECT_EQ(a.modules[i].stats.busy_cycles, b.modules[i].stats.busy_cycles);
    EXPECT_EQ(a.modules[i].stats.stall_cycles,
              b.modules[i].stats.stall_cycles);
    EXPECT_EQ(a.modules[i].stats.ops.mac, b.modules[i].stats.ops.mac);
    EXPECT_EQ(a.modules[i].stats.ops.compare, b.modules[i].stats.ops.compare);
  }
  EXPECT_EQ(a.total_ops.mac, b.total_ops.mac);
  EXPECT_EQ(a.total_ops.mem_write, b.total_ops.mem_write);
  EXPECT_EQ(a.fifo_in_stats.pushes, b.fifo_in_stats.pushes);
  EXPECT_EQ(a.fifo_in_stats.pops, b.fifo_in_stats.pops);
  EXPECT_EQ(a.fifo_in_stats.full_rejects, b.fifo_in_stats.full_rejects);
  EXPECT_EQ(a.fifo_in_stats.max_occupancy, b.fifo_in_stats.max_occupancy);
  EXPECT_EQ(a.fifo_out_stats.pushes, b.fifo_out_stats.pushes);
  EXPECT_EQ(a.link_active_cycles, b.link_active_cycles);
  EXPECT_EQ(a.stream_words, b.stream_words);
}

void seed_entry(ServiceCycleCache& cache, const ServiceCycleCache::Key& key,
                const RunResult& result) {
  ASSERT_FALSE(cache.acquire(key).has_value());
  cache.publish(key, result);
}

TEST(CycleCachePersist, RoundTripIsBitIdentical) {
  const std::string path = temp_path("cycle_cache_roundtrip.bin");
  std::remove(path.c_str());

  ServiceCycleCache cache(16);
  const ServiceCycleCache::Key warm{101, 202, 3, true};
  const ServiceCycleCache::Key cold{101, 202, 3, false};
  seed_entry(cache, warm, rich_result(1));
  seed_entry(cache, cold, rich_result(2));
  ASSERT_EQ(cache.save(path), 2U);

  ServiceCycleCache reloaded(16);
  ASSERT_EQ(reloaded.load(path), 2U);
  EXPECT_EQ(reloaded.size(), 2U);
  // Loaded entries are replays, not this process's publishes.
  EXPECT_EQ(reloaded.stats().insertions, 0U);

  const std::optional<RunResult> warm_seen = reloaded.acquire(warm);
  ASSERT_TRUE(warm_seen.has_value());
  expect_bit_identical(rich_result(1), *warm_seen);
  const std::optional<RunResult> cold_seen = reloaded.acquire(cold);
  ASSERT_TRUE(cold_seen.has_value());
  expect_bit_identical(rich_result(2), *cold_seen);
  std::remove(path.c_str());
}

TEST(CycleCachePersist, SegmentCountIsNotPartOfTheOnDiskFormat) {
  // A sharded cache saves a merged view; any segmentation loads it.
  // Save from 4 segments, reload into 1 and 8: every entry must replay
  // bit-identically — the file format stays v1, segment-agnostic.
  const std::string path = temp_path("cycle_cache_segments.bin");
  std::remove(path.c_str());

  // Capacity / segments stays >= the entry count so the per-segment
  // LRU bound can never evict, however unevenly the keys hash.
  ServiceCycleCache sharded(128, nullptr, 4);
  std::vector<ServiceCycleCache::Key> keys;
  for (std::uint64_t k = 0; k < 12; ++k) {
    keys.push_back({k * 31 + 5, k * 17 + 9, 3, k % 2 == 0});
    seed_entry(sharded, keys.back(), rich_result(k));
  }
  ASSERT_EQ(sharded.save(path), keys.size());

  for (const std::size_t segments : {1u, 8u}) {
    ServiceCycleCache reloaded(128, nullptr, segments);
    ASSERT_EQ(reloaded.load(path), keys.size()) << segments << " segments";
    EXPECT_EQ(reloaded.size(), keys.size());
    for (std::uint64_t k = 0; k < keys.size(); ++k) {
      const std::optional<RunResult> seen = reloaded.acquire(keys[k]);
      ASSERT_TRUE(seen.has_value())
          << "key " << k << " lost at " << segments << " segments";
      expect_bit_identical(rich_result(k), *seen);
    }
  }
  std::remove(path.c_str());
}

TEST(CycleCachePersist, RoundTripsRealSimulationResults) {
  const std::string path = temp_path("cycle_cache_real.bin");
  std::remove(path.c_str());

  model::ModelConfig mc;
  mc.vocab_size = 12;
  mc.embedding_dim = 8;
  mc.hops = 2;
  mc.max_memory = 8;
  numeric::Rng rng(7);
  const model::MemN2N net(mc, rng);
  const Accelerator device(AccelConfig{}, compile_model(net));
  std::vector<data::EncodedStory> stories(4);
  for (std::size_t i = 0; i < stories.size(); ++i) {
    const auto w = [&](std::size_t k) {
      return static_cast<std::int32_t>((i + k) % 12);
    };
    stories[i].context = {{w(0), w(1)}, {w(2), w(3)}};
    stories[i].question = {w(4)};
    stories[i].answer = w(5);
  }

  ServiceCycleCache cache(8);
  RunOptions options;
  options.cycle_cache = &cache;
  const RunResult simulated = device.run(stories, options);
  ASSERT_EQ(cache.save(path), 1U);

  // A fresh cache loaded from disk replays the identical result.
  ServiceCycleCache reloaded(8);
  ASSERT_EQ(reloaded.load(path), 1U);
  options.cycle_cache = &reloaded;
  const RunResult replayed = device.run(stories, options);
  EXPECT_EQ(reloaded.stats().hits, 1U);
  EXPECT_EQ(reloaded.stats().misses, 0U);
  expect_bit_identical(simulated, replayed);
  std::remove(path.c_str());
}

TEST(CycleCachePersist, MissingFileLoadsNothing) {
  ServiceCycleCache cache(4);
  EXPECT_EQ(cache.load(temp_path("cycle_cache_does_not_exist.bin")), 0U);
  EXPECT_EQ(cache.size(), 0U);
}

TEST(CycleCachePersist, GarbageFileIsIgnored) {
  const std::string path = temp_path("cycle_cache_garbage.bin");
  write_file(path, "this is not a cycle cache at all, not even close");
  ServiceCycleCache cache(4);
  EXPECT_EQ(cache.load(path), 0U);
  EXPECT_EQ(cache.size(), 0U);
  std::remove(path.c_str());
}

TEST(CycleCachePersist, TruncatedFileIsIgnored) {
  const std::string path = temp_path("cycle_cache_truncated.bin");
  std::remove(path.c_str());
  ServiceCycleCache cache(4);
  seed_entry(cache, {1, 2, 3, false}, rich_result(1));
  ASSERT_EQ(cache.save(path), 1U);

  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 8U);
  // Chop mid-payload (and, for the shortest prefix, mid-header): every
  // truncation point must load nothing, not a partial cache.
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{12}}) {
    write_file(path, bytes.substr(0, keep));
    ServiceCycleCache fresh(4);
    EXPECT_EQ(fresh.load(path), 0U) << "kept " << keep << " bytes";
    EXPECT_EQ(fresh.size(), 0U);
  }
  std::remove(path.c_str());
}

TEST(CycleCachePersist, CorruptedPayloadFailsChecksum) {
  const std::string path = temp_path("cycle_cache_corrupt.bin");
  std::remove(path.c_str());
  ServiceCycleCache cache(4);
  seed_entry(cache, {1, 2, 3, false}, rich_result(1));
  ASSERT_EQ(cache.save(path), 1U);

  std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 48U);
  bytes[bytes.size() - 5] ^= 0x40;  // single bit flip deep in the payload
  write_file(path, bytes);

  ServiceCycleCache fresh(4);
  EXPECT_EQ(fresh.load(path), 0U);
  EXPECT_EQ(fresh.size(), 0U);
  std::remove(path.c_str());
}

TEST(CycleCachePersist, VersionMismatchInvalidates) {
  const std::string path = temp_path("cycle_cache_version.bin");
  std::remove(path.c_str());
  ServiceCycleCache cache(4);
  seed_entry(cache, {1, 2, 3, false}, rich_result(1));
  ASSERT_EQ(cache.save(path), 1U);

  // The version lives in header bytes [8, 16); the checksum only covers
  // the payload, so this isolates the version gate from the checksum one.
  std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 16U);
  bytes[8] = static_cast<char>(ServiceCycleCache::kPersistVersion + 1);
  write_file(path, bytes);

  ServiceCycleCache fresh(4);
  EXPECT_EQ(fresh.load(path), 0U);
  EXPECT_EQ(fresh.size(), 0U);
  std::remove(path.c_str());
}

TEST(CycleCachePersist, LoadMergesAndResidentKeysWin) {
  const std::string path = temp_path("cycle_cache_merge.bin");
  std::remove(path.c_str());
  const ServiceCycleCache::Key shared{9, 9, 2, false};
  const ServiceCycleCache::Key only_on_disk{9, 10, 2, false};

  ServiceCycleCache writer(8);
  seed_entry(writer, shared, rich_result(1));
  seed_entry(writer, only_on_disk, rich_result(2));
  ASSERT_EQ(writer.save(path), 2U);

  // The reader already computed `shared` itself (different salt): its own
  // entry must survive the merge, while the disk-only key joins it.
  ServiceCycleCache reader(8);
  seed_entry(reader, shared, rich_result(3));
  EXPECT_EQ(reader.load(path), 1U);
  EXPECT_EQ(reader.size(), 2U);
  expect_bit_identical(rich_result(3), *reader.acquire(shared));
  expect_bit_identical(rich_result(2), *reader.acquire(only_on_disk));
  std::remove(path.c_str());
}

TEST(CycleCachePersist, LoadRespectsCapacityKeepingHottestEntries) {
  const std::string path = temp_path("cycle_cache_capacity.bin");
  std::remove(path.c_str());
  ServiceCycleCache writer(8);
  for (std::uint64_t i = 0; i < 4; ++i) {
    seed_entry(writer, {i, i, 1, false}, rich_result(i));
  }
  ASSERT_EQ(writer.save(path), 4U);

  // A smaller cache truncates on load — and keeps the most recently
  // used entries (save orders coldest-first for exactly this reason).
  ServiceCycleCache small(2);
  EXPECT_EQ(small.load(path), 4U);
  EXPECT_EQ(small.size(), 2U);
  EXPECT_TRUE(small.acquire({3, 3, 1, false}).has_value());
  EXPECT_TRUE(small.acquire({2, 2, 1, false}).has_value());
  EXPECT_FALSE(small.acquire({0, 0, 1, false}).has_value());
  small.abandon({0, 0, 1, false});
  std::remove(path.c_str());
}

TEST(CycleCachePersist, SaveOverwritesAtomicallyAndIsReloadable) {
  const std::string path = temp_path("cycle_cache_overwrite.bin");
  std::remove(path.c_str());
  ServiceCycleCache first(4);
  seed_entry(first, {1, 1, 1, false}, rich_result(1));
  ASSERT_EQ(first.save(path), 1U);

  ServiceCycleCache second(4);
  seed_entry(second, {2, 2, 1, false}, rich_result(2));
  seed_entry(second, {3, 3, 1, false}, rich_result(3));
  ASSERT_EQ(second.save(path), 2U);  // replaces, never appends

  ServiceCycleCache reloaded(4);
  EXPECT_EQ(reloaded.load(path), 2U);
  EXPECT_FALSE(reloaded.acquire({1, 1, 1, false}).has_value());
  reloaded.abandon({1, 1, 1, false});
  EXPECT_TRUE(reloaded.acquire({2, 2, 1, false}).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mann::accel
