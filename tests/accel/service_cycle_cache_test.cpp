#include "accel/service_cycle_cache.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/compiler.hpp"
#include "model/memn2n.hpp"
#include "numeric/random.hpp"
#include "serve/eviction.hpp"

namespace mann::accel {
namespace {

model::ModelConfig tiny_model_config() {
  model::ModelConfig config;
  config.vocab_size = 12;
  config.embedding_dim = 8;
  config.hops = 2;
  config.max_memory = 8;
  return config;
}

DeviceProgram tiny_program(std::uint64_t seed = 7) {
  numeric::Rng rng(seed);
  const model::MemN2N net(tiny_model_config(), rng);
  return compile_model(net);
}

std::vector<data::EncodedStory> tiny_stories(std::size_t count,
                                             std::int32_t offset = 0) {
  std::vector<data::EncodedStory> stories;
  stories.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    data::EncodedStory story;
    const auto w = [&](std::size_t k) {
      return static_cast<std::int32_t>((i + k + offset) % 12);
    };
    story.context = {{w(0), w(1)}, {w(2), w(3)}};
    story.question = {w(4)};
    story.answer = w(5);
    stories.push_back(story);
  }
  return stories;
}

RunResult fake_result(sim::Cycle cycles) {
  RunResult r;
  r.total_cycles = cycles;
  return r;
}

TEST(ServiceCycleCache, RejectsZeroCapacity) {
  EXPECT_THROW(ServiceCycleCache(0), std::invalid_argument);
}

TEST(ServiceCycleCache, DigestDistinguishesStories) {
  const auto a = tiny_stories(4, 0);
  const auto b = tiny_stories(4, 1);
  EXPECT_NE(digest_stories(a), digest_stories(b));
  EXPECT_EQ(digest_stories(a), digest_stories(tiny_stories(4, 0)));
  // Prefix of a batch is a different workload even if contents agree.
  EXPECT_NE(digest_stories(a),
            digest_stories(std::span(a.data(), 3)));
}

TEST(ServiceCycleCache, MissThenHit) {
  ServiceCycleCache cache(4);
  const ServiceCycleCache::Key key{1, 2, 3, false};

  EXPECT_FALSE(cache.acquire(key).has_value());  // miss: caller owns it
  cache.publish(key, fake_result(123));

  const std::optional<RunResult> hit = cache.acquire(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->total_cycles, 123U);

  const ServiceCycleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1U);
  EXPECT_EQ(stats.misses, 1U);
  EXPECT_EQ(stats.insertions, 1U);
  EXPECT_EQ(stats.evictions, 0U);
  EXPECT_EQ(stats.entries, 1U);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ServiceCycleCache, OutcomeParameterReportsEachLookupKind) {
  ServiceCycleCache cache(4);
  const ServiceCycleCache::Key key{5, 6, 7, true};

  CacheOutcome outcome = CacheOutcome::kNone;
  EXPECT_FALSE(cache.acquire(key, &outcome).has_value());
  EXPECT_EQ(outcome, CacheOutcome::kMiss);
  cache.publish(key, fake_result(9));
  EXPECT_TRUE(cache.acquire(key, &outcome).has_value());
  EXPECT_EQ(outcome, CacheOutcome::kHit);

  // A lookup that blocked on an in-flight computation is a wait, not a
  // hit — and the stats put it in its own bucket.
  const ServiceCycleCache::Key inflight{5, 6, 8, true};
  EXPECT_FALSE(cache.acquire(inflight).has_value());
  std::thread waiter([&] {
    CacheOutcome waited = CacheOutcome::kNone;
    const std::optional<RunResult> seen = cache.acquire(inflight, &waited);
    ASSERT_TRUE(seen.has_value());
    // The waiter may race ahead of the publish and see a plain hit; both
    // outcomes are legal, kMiss is not.
    EXPECT_NE(waited, CacheOutcome::kMiss);
    EXPECT_NE(waited, CacheOutcome::kNone);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  cache.publish(inflight, fake_result(11));
  waiter.join();

  const ServiceCycleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.waits + stats.misses, 4U);
  EXPECT_EQ(stats.misses, 2U);
  // Every lookup lands in exactly one bucket, so the rate denominator
  // is the full lookup count.
  EXPECT_DOUBLE_EQ(stats.hit_rate(),
                   static_cast<double>(stats.hits) /
                       static_cast<double>(stats.hits + stats.waits +
                                           stats.misses));
}

TEST(ServiceCycleCache, ResidentFlagSeparatesEntries) {
  ServiceCycleCache cache(4);
  const ServiceCycleCache::Key cold{1, 2, 3, false};
  const ServiceCycleCache::Key warm{1, 2, 3, true};

  EXPECT_FALSE(cache.acquire(cold).has_value());
  cache.publish(cold, fake_result(100));
  EXPECT_FALSE(cache.acquire(warm).has_value());  // distinct key: miss
  cache.publish(warm, fake_result(80));

  EXPECT_EQ(cache.acquire(cold)->total_cycles, 100U);
  EXPECT_EQ(cache.acquire(warm)->total_cycles, 80U);
}

TEST(ServiceCycleCache, EvictsLeastRecentlyUsed) {
  ServiceCycleCache cache(2);
  const ServiceCycleCache::Key a{1, 0, 1, false};
  const ServiceCycleCache::Key b{2, 0, 1, false};
  const ServiceCycleCache::Key c{3, 0, 1, false};

  EXPECT_FALSE(cache.acquire(a).has_value());
  cache.publish(a, fake_result(1));
  EXPECT_FALSE(cache.acquire(b).has_value());
  cache.publish(b, fake_result(2));
  // Touch `a` so `b` is the LRU entry when `c` overflows the cache.
  EXPECT_TRUE(cache.acquire(a).has_value());
  EXPECT_FALSE(cache.acquire(c).has_value());
  cache.publish(c, fake_result(3));

  EXPECT_EQ(cache.size(), 2U);
  EXPECT_EQ(cache.stats().evictions, 1U);
  EXPECT_TRUE(cache.acquire(a).has_value());   // survivor
  EXPECT_TRUE(cache.acquire(c).has_value());   // newest
  EXPECT_FALSE(cache.acquire(b).has_value());  // evicted: miss again
  cache.abandon(b);
}

TEST(ServiceCycleCache, AcquireWaitsForInFlightPublish) {
  ServiceCycleCache cache(256);
  // The waiter can win the race and see the published entry without ever
  // blocking; retry on fresh keys until one demonstrably waited.
  for (int attempt = 0; attempt < 100 && cache.stats().waits == 0;
       ++attempt) {
    const ServiceCycleCache::Key key{
        9, static_cast<std::uint64_t>(attempt), 1, true};
    ASSERT_FALSE(cache.acquire(key).has_value());  // this thread owns it

    std::optional<RunResult> seen;
    std::thread waiter([&] { seen = cache.acquire(key); });
    // Give the waiter a moment to block on the in-flight computation;
    // publishing then wakes it with the result (a hit that waited).
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    cache.publish(key, fake_result(55));
    waiter.join();

    ASSERT_TRUE(seen.has_value());
    EXPECT_EQ(seen->total_cycles, 55U);
  }
  EXPECT_GE(cache.stats().waits, 1U);
}

TEST(ServiceCycleCache, AbandonHandsComputationToWaiter) {
  ServiceCycleCache cache(4);
  const ServiceCycleCache::Key key{9, 9, 1, false};
  ASSERT_FALSE(cache.acquire(key).has_value());

  std::optional<RunResult> seen{fake_result(0)};  // sentinel non-empty
  std::thread waiter([&] { seen = cache.acquire(key); });
  cache.abandon(key);
  waiter.join();

  // The waiter took over the computation: its acquire was a miss.
  EXPECT_FALSE(seen.has_value());
  cache.publish(key, fake_result(7));
  EXPECT_EQ(cache.acquire(key)->total_cycles, 7U);
}

TEST(ServiceCycleCache, ReplayIsBitIdenticalToSimulation) {
  const Accelerator device(AccelConfig{}, tiny_program());
  const auto stories = tiny_stories(5);

  ServiceCycleCache cache(8);
  RunOptions options;
  options.cycle_cache = &cache;

  const RunResult simulated = device.run(stories, options);
  const RunResult replayed = device.run(stories, options);

  EXPECT_EQ(cache.stats().hits, 1U);
  EXPECT_EQ(cache.stats().misses, 1U);

  EXPECT_EQ(replayed.total_cycles, simulated.total_cycles);
  EXPECT_DOUBLE_EQ(replayed.seconds, simulated.seconds);
  EXPECT_EQ(replayed.stream_words, simulated.stream_words);
  EXPECT_EQ(replayed.link_active_cycles, simulated.link_active_cycles);
  ASSERT_EQ(replayed.stories.size(), simulated.stories.size());
  for (std::size_t i = 0; i < simulated.stories.size(); ++i) {
    EXPECT_EQ(replayed.stories[i].prediction, simulated.stories[i].prediction);
    EXPECT_EQ(replayed.stories[i].finish_cycle,
              simulated.stories[i].finish_cycle);
    EXPECT_EQ(replayed.stories[i].output_probes,
              simulated.stories[i].output_probes);
    EXPECT_EQ(replayed.stories[i].early_exit, simulated.stories[i].early_exit);
  }
  ASSERT_EQ(replayed.modules.size(), simulated.modules.size());
  for (std::size_t i = 0; i < simulated.modules.size(); ++i) {
    EXPECT_EQ(replayed.modules[i].name, simulated.modules[i].name);
    EXPECT_EQ(replayed.modules[i].stats.busy_cycles,
              simulated.modules[i].stats.busy_cycles);
  }
  EXPECT_EQ(replayed.fifo_in_stats.pushes, simulated.fifo_in_stats.pushes);
  EXPECT_EQ(replayed.fifo_out_stats.pops, simulated.fifo_out_stats.pops);

  // A plain uncached run agrees too: caching never changes results.
  const RunResult uncached = device.run(stories);
  EXPECT_EQ(uncached.total_cycles, simulated.total_cycles);
}

TEST(ServiceCycleCache, WarmAndColdRunsCacheSeparately) {
  const Accelerator device(AccelConfig{}, tiny_program());
  const auto stories = tiny_stories(3);

  ServiceCycleCache cache(8);
  RunOptions cold;
  cold.cycle_cache = &cache;
  RunOptions warm = cold;
  warm.model_resident = true;

  const RunResult cold_run = device.run(stories, cold);
  const RunResult warm_run = device.run(stories, warm);
  EXPECT_LT(warm_run.total_cycles, cold_run.total_cycles);
  EXPECT_EQ(cache.stats().misses, 2U);  // distinct keys, no false sharing
  EXPECT_EQ(device.run(stories, warm).total_cycles, warm_run.total_cycles);
  EXPECT_EQ(cache.stats().hits, 1U);
}

TEST(ServiceCycleCache, DifferentProgramsDoNotCollide) {
  const Accelerator first(AccelConfig{}, tiny_program(7));
  const Accelerator second(AccelConfig{}, tiny_program(8));
  EXPECT_NE(first.fingerprint(), second.fingerprint());

  ServiceCycleCache cache(8);
  RunOptions options;
  options.cycle_cache = &cache;
  const auto stories = tiny_stories(3);
  (void)first.run(stories, options);
  (void)second.run(stories, options);
  EXPECT_EQ(cache.stats().misses, 2U);
  EXPECT_EQ(cache.stats().hits, 0U);
}

TEST(ServiceCycleCache, AdmissionFloorDropsCheapResultsButWakesWaiters) {
  ServiceCycleCache cache(4);
  cache.set_admission_floor(100);

  // Below the floor: cheaper to re-simulate than to hold a slot.
  const ServiceCycleCache::Key cheap{1, 1, 1, false};
  EXPECT_FALSE(cache.acquire(cheap).has_value());
  std::optional<RunResult> seen{fake_result(0)};  // sentinel non-empty
  std::thread waiter([&] { seen = cache.acquire(cheap); });
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  cache.publish(cheap, fake_result(99));
  waiter.join();
  // The rendezvous contract held — the waiter woke — but the entry was
  // not admitted, so the waiter took over the computation (a miss).
  EXPECT_FALSE(seen.has_value());
  cache.abandon(cheap);
  EXPECT_EQ(cache.size(), 0U);
  EXPECT_EQ(cache.stats().admission_rejects, 1U);
  EXPECT_EQ(cache.stats().insertions, 0U);

  // At/above the floor: admitted as usual.
  const ServiceCycleCache::Key costly{1, 2, 1, false};
  EXPECT_FALSE(cache.acquire(costly).has_value());
  cache.publish(costly, fake_result(100));
  EXPECT_TRUE(cache.acquire(costly).has_value());
  EXPECT_EQ(cache.stats().insertions, 1U);
  EXPECT_EQ(cache.stats().admission_rejects, 1U);
}

TEST(ServiceCycleCache, CostAwareEvictionDropsCheapestToRecompute) {
  ServiceCycleCache cache(2);
  cache.set_eviction_policy(
      serve::make_eviction_policy(serve::EvictionPolicyKind::kCostAware));

  const ServiceCycleCache::Key expensive{1, 0, 1, false};
  const ServiceCycleCache::Key cheap{2, 0, 1, false};
  const ServiceCycleCache::Key next{3, 0, 1, false};
  EXPECT_FALSE(cache.acquire(expensive).has_value());
  cache.publish(expensive, fake_result(9'000));
  EXPECT_FALSE(cache.acquire(cheap).has_value());
  cache.publish(cheap, fake_result(10));
  // Touch the cheap entry so plain LRU would have evicted `expensive`;
  // the cost-aware policy instead drops the entry cheapest to re-run.
  EXPECT_TRUE(cache.acquire(cheap).has_value());
  EXPECT_FALSE(cache.acquire(next).has_value());
  cache.publish(next, fake_result(5'000));

  EXPECT_EQ(cache.stats().evictions, 1U);
  EXPECT_TRUE(cache.acquire(expensive).has_value());  // survivor
  EXPECT_TRUE(cache.acquire(next).has_value());
  EXPECT_FALSE(cache.acquire(cheap).has_value());  // evicted: cheapest
  cache.abandon(cheap);
}

TEST(ServiceCycleCache, ClearResetsEntriesAndStats) {
  ServiceCycleCache cache(4);
  const ServiceCycleCache::Key key{1, 2, 3, false};
  EXPECT_FALSE(cache.acquire(key).has_value());
  cache.publish(key, fake_result(1));
  cache.clear();
  EXPECT_EQ(cache.size(), 0U);
  EXPECT_EQ(cache.stats().hits, 0U);
  EXPECT_FALSE(cache.acquire(key).has_value());  // gone
  cache.abandon(key);
}

// ------------------------------------------------------------- sharding

TEST(ServiceCycleCacheSharded, StatTotalsAreInvariantAcrossSegmentCounts) {
  // One deterministic single-threaded sequence replayed against caches
  // sharded 1/2/4/8 ways: segmentation moves entries between locks, but
  // the summed hit/miss/insertion/admission accounting must not move.
  // Capacity is sized so even the most skewed hash split cannot
  // overflow a single segment (capacity/segments = 64 >= 32 entries):
  // per-segment LRU means a tight cache CAN evict earlier when sharded,
  // which is a capacity artifact, not an accounting difference.
  const auto run_sequence = [](std::size_t segments) {
    ServiceCycleCache cache(512, nullptr, segments);
    EXPECT_EQ(cache.segments(), segments);
    cache.set_admission_floor(100);
    for (std::uint64_t k = 0; k < 48; ++k) {
      const ServiceCycleCache::Key key{k * 7 + 1, k * 13 + 2, 4, k % 2 == 0};
      EXPECT_FALSE(cache.acquire(key).has_value());
      // The first 16 results sit below the admission floor: rejected.
      cache.publish(key, fake_result(k < 16 ? 50 : 200));
    }
    for (std::uint64_t k = 0; k < 48; ++k) {
      const ServiceCycleCache::Key key{k * 7 + 1, k * 13 + 2, 4, k % 2 == 0};
      const std::optional<RunResult> seen = cache.acquire(key);
      EXPECT_EQ(seen.has_value(), k >= 16) << "key " << k;
      if (!seen.has_value()) {
        cache.abandon(key);
      }
    }
    return cache.stats();
  };

  const ServiceCycleCacheStats one = run_sequence(1);
  EXPECT_EQ(one.hits, 32U);
  EXPECT_EQ(one.misses, 64U);  // 48 first-pass + 16 rejected re-misses
  EXPECT_EQ(one.waits, 0U);
  EXPECT_EQ(one.insertions, 32U);
  EXPECT_EQ(one.admission_rejects, 16U);
  EXPECT_EQ(one.entries, 32U);
  for (const std::size_t segments : {2u, 4u, 8u}) {
    const ServiceCycleCacheStats sharded = run_sequence(segments);
    EXPECT_EQ(sharded.hits + sharded.waits + sharded.misses,
              one.hits + one.waits + one.misses)
        << segments << " segments";
    EXPECT_EQ(sharded.hits, one.hits) << segments << " segments";
    EXPECT_EQ(sharded.misses, one.misses) << segments << " segments";
    EXPECT_EQ(sharded.insertions, one.insertions) << segments << " segments";
    EXPECT_EQ(sharded.admission_rejects, one.admission_rejects)
        << segments << " segments";
    EXPECT_EQ(sharded.entries, one.entries) << segments << " segments";
  }
}

TEST(ServiceCycleCacheSharded, UniquePtrEvictionPolicyIsRefusedKindWorks) {
  // One policy object cannot serve concurrently-locked segments; the
  // kind overload builds one per segment instead.
  ServiceCycleCache sharded(16, nullptr, 4);
  EXPECT_THROW(sharded.set_eviction_policy(serve::make_eviction_policy(
                   serve::EvictionPolicyKind::kCostAware)),
               std::invalid_argument);
  sharded.set_eviction_policy(serve::EvictionPolicyKind::kCostAware);
  // Resetting to the built-in LRU via a null unique_ptr stays legal.
  sharded.set_eviction_policy(nullptr);

  ServiceCycleCache single(16);
  single.set_eviction_policy(
      serve::make_eviction_policy(serve::EvictionPolicyKind::kCostAware));
}

TEST(ServiceCycleCacheSharded, ConcurrentHammerKeepsLedgerConsistent) {
  // TSan coverage for the segment locks and the in-flight rendezvous:
  // four threads over an 8-segment cache, overlapping key ranges so the
  // same segments see hits, misses, publishes and waits concurrently.
  ServiceCycleCache cache(256, nullptr, 8);
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kKeys = 64;
  constexpr int kRounds = 40;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (std::uint64_t k = 0; k < kKeys; ++k) {
          const ServiceCycleCache::Key key{k + 1, (k + t) % kKeys + 1, 2,
                                           false};
          const std::optional<RunResult> seen = cache.acquire(key);
          if (seen.has_value()) {
            EXPECT_EQ(seen->total_cycles, 1'000 + key.program_fingerprint);
          } else {
            cache.publish(key, fake_result(1'000 + key.program_fingerprint));
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const ServiceCycleCacheStats stats = cache.stats();
  // Every lookup landed in exactly one bucket.
  EXPECT_EQ(stats.hits + stats.waits + stats.misses,
            kThreads * kRounds * kKeys);
  EXPECT_EQ(stats.entries, cache.size());
  EXPECT_LE(cache.size(), 256U);
}

}  // namespace
}  // namespace mann::accel
