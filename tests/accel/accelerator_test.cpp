#include "accel/accelerator.hpp"

#include <gtest/gtest.h>

#include "accel/stream.hpp"
#include "core/ith.hpp"
#include "data/dataset.hpp"
#include "model/trainer.hpp"

namespace mann::accel {
namespace {

/// One trained model + dataset + compiled programs, shared by the suite
/// (training once keeps the test binary fast).
class AcceleratorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetConfig dc;
    dc.train_stories = 300;
    dc.test_stories = 60;
    dc.seed = 99;
    dataset_ = new data::TaskDataset(
        data::build_task_dataset(data::TaskId::kSingleSupportingFact, dc));

    model::ModelConfig mc;
    mc.vocab_size = dataset_->vocab_size();
    mc.embedding_dim = 16;
    mc.hops = 3;
    numeric::Rng rng(12);
    model_ = new model::MemN2N(mc, rng);
    model::TrainConfig tc;
    tc.epochs = 12;
    model::train(*model_, dataset_->train, tc);

    ith_ = new core::InferenceThresholding(
        core::InferenceThresholding::calibrate(*model_, dataset_->train,
                                               {}));
  }

  static void TearDownTestSuite() {
    delete ith_;
    delete model_;
    delete dataset_;
    ith_ = nullptr;
    model_ = nullptr;
    dataset_ = nullptr;
  }

  static AccelConfig base_config(double clock_hz = 100.0e6) {
    AccelConfig cfg;
    cfg.clock_hz = clock_hz;
    return cfg;
  }

  static std::span<const data::EncodedStory> test_slice(std::size_t n) {
    return {dataset_->test.data(), std::min(n, dataset_->test.size())};
  }

  static data::TaskDataset* dataset_;
  static model::MemN2N* model_;
  static core::InferenceThresholding* ith_;
};

data::TaskDataset* AcceleratorFixture::dataset_ = nullptr;
model::MemN2N* AcceleratorFixture::model_ = nullptr;
core::InferenceThresholding* AcceleratorFixture::ith_ = nullptr;

TEST_F(AcceleratorFixture, PredictionsMatchFloatReference) {
  const Accelerator device(base_config(), compile_model(*model_));
  const RunResult run = device.run(test_slice(40));
  ASSERT_EQ(run.stories.size(), 40U);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < run.stories.size(); ++i) {
    const auto ref = model_->predict(dataset_->test[i]);
    if (run.stories[i].prediction == static_cast<std::int32_t>(ref)) {
      ++agree;
    }
  }
  // Q16.16 quantization may flip rare near-ties; demand >= 95% agreement.
  EXPECT_GE(agree, 38U);
}

TEST_F(AcceleratorFixture, WithoutIthEveryClassIsProbed) {
  const Accelerator device(base_config(), compile_model(*model_));
  const RunResult run = device.run(test_slice(10));
  for (const StoryOutcome& s : run.stories) {
    EXPECT_EQ(s.output_probes, dataset_->vocab_size());
    EXPECT_FALSE(s.early_exit);
  }
}

TEST_F(AcceleratorFixture, IthReducesProbes) {
  AccelConfig cfg = base_config();
  cfg.ith_enabled = true;
  const Accelerator device(cfg, compile_model(*model_, ith_));
  const RunResult run = device.run(test_slice(40));
  EXPECT_LT(run.mean_output_probes(),
            static_cast<double>(dataset_->vocab_size()));
  EXPECT_GT(run.early_exit_rate(), 0.0);
}

TEST_F(AcceleratorFixture, IthAgreesWithSoftwareIth) {
  AccelConfig cfg = base_config();
  cfg.ith_enabled = true;
  const Accelerator device(cfg, compile_model(*model_, ith_));
  const RunResult run = device.run(test_slice(30));
  std::size_t agree = 0;
  for (std::size_t i = 0; i < run.stories.size(); ++i) {
    const auto sw = ith_->predict(*model_, dataset_->test[i]);
    if (run.stories[i].prediction ==
        static_cast<std::int32_t>(sw.prediction)) {
      ++agree;
    }
  }
  EXPECT_GE(agree, 28U);  // fixed-point tolerance
}

TEST_F(AcceleratorFixture, IthEnabledWithoutTablesThrows) {
  AccelConfig cfg = base_config();
  cfg.ith_enabled = true;
  EXPECT_THROW(Accelerator(cfg, compile_model(*model_)),
               std::invalid_argument);
}

TEST_F(AcceleratorFixture, HigherClockFewerSecondsButSublinear) {
  const DeviceProgram prog = compile_model(*model_);
  const Accelerator slow(base_config(25.0e6), prog);
  const Accelerator fast(base_config(100.0e6), prog);
  const auto r_slow = slow.run(test_slice(30));
  const auto r_fast = fast.run(test_slice(30));
  EXPECT_LT(r_fast.seconds, r_slow.seconds);
  // 4x clock must give < 4x speedup: the host link does not scale...
  EXPECT_LT(r_slow.seconds / r_fast.seconds, 3.9);
  EXPECT_GT(r_slow.seconds / r_fast.seconds, 1.02);
  // ...which shows up as *more* cycles burned at the higher clock (the
  // clock-independent I/O term occupies more fabric cycles).
  EXPECT_GT(r_fast.total_cycles, r_slow.total_cycles);
}

TEST_F(AcceleratorFixture, IthSavesComputeCyclesAtFixedClock) {
  // Compare pure compute by making the link effectively infinite: the
  // remaining cycles are datapath work, which ITH must reduce.
  AccelConfig cfg = base_config(25.0e6);
  cfg.link.words_per_second = 1.0e12;
  cfg.link.per_story_latency = 0.0;
  cfg.link.result_latency = 0.0;
  const Accelerator plain(cfg, compile_model(*model_));
  cfg.ith_enabled = true;
  const Accelerator with_ith(cfg, compile_model(*model_, ith_));
  const auto r_plain = plain.run(test_slice(40));
  const auto r_ith = with_ith.run(test_slice(40));
  EXPECT_LT(r_ith.total_cycles, r_plain.total_cycles);
  // The saving comes from the OUTPUT module doing fewer probes.
  EXPECT_LT(r_ith.mean_output_probes(), r_plain.mean_output_probes());
}

TEST_F(AcceleratorFixture, ModuleStatsAreConsistent) {
  const Accelerator device(base_config(), compile_model(*model_));
  const RunResult run = device.run(test_slice(20));
  ASSERT_EQ(run.modules.size(), 6U);
  // Every module except possibly CONTROL ticked busy at least once.
  for (const ModuleReport& m : run.modules) {
    EXPECT_GT(m.stats.busy_cycles, 0U) << m.name;
    EXPECT_LE(m.stats.busy_cycles + m.stats.stall_cycles, run.total_cycles)
        << m.name;
  }
  // The datapath did real arithmetic.
  EXPECT_GT(run.total_ops.mac, 0U);
  EXPECT_GT(run.total_ops.exp, 0U);
  EXPECT_GT(run.total_ops.div, 0U);
  EXPECT_GT(run.total_ops.compare, 0U);
}

TEST_F(AcceleratorFixture, FifoStatsShowTraffic) {
  const Accelerator device(base_config(), compile_model(*model_));
  const RunResult run = device.run(test_slice(10));
  EXPECT_GT(run.fifo_in_stats.pushes, 0U);
  EXPECT_EQ(run.fifo_in_stats.pushes, run.fifo_in_stats.pops);
  EXPECT_EQ(run.fifo_out_stats.pushes, 10U);
  EXPECT_EQ(run.fifo_out_stats.pops, 10U);
}

TEST_F(AcceleratorFixture, StreamWordsAccountedOnce) {
  const DeviceProgram prog = compile_model(*model_);
  const Accelerator device(base_config(), prog);
  const RunResult run = device.run(test_slice(5));
  std::size_t expected = prog.model_words();
  for (std::size_t i = 0; i < 5; ++i) {
    expected += encode_story(dataset_->test[i]).size();
  }
  EXPECT_EQ(run.stream_words, expected);
  EXPECT_EQ(run.fifo_in_stats.pushes, expected);
}

TEST_F(AcceleratorFixture, FinishCyclesAreMonotone) {
  const Accelerator device(base_config(), compile_model(*model_));
  const RunResult run = device.run(test_slice(8));
  for (std::size_t i = 1; i < run.stories.size(); ++i) {
    EXPECT_GT(run.stories[i].finish_cycle, run.stories[i - 1].finish_cycle);
  }
}

TEST_F(AcceleratorFixture, DeterministicAcrossRuns) {
  const Accelerator device(base_config(), compile_model(*model_));
  const RunResult a = device.run(test_slice(10));
  const RunResult b = device.run(test_slice(10));
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.stories[i].prediction, b.stories[i].prediction);
  }
}

TEST_F(AcceleratorFixture, EmptyWorkloadCompletesAfterModelLoad) {
  const Accelerator device(base_config(), compile_model(*model_));
  const RunResult run = device.run({});
  EXPECT_TRUE(run.stories.empty());
  EXPECT_EQ(run.total_cycles, 0U);  // done predicate true immediately
}

TEST_F(AcceleratorFixture, NarrowLanesCostMoreCycles) {
  AccelConfig narrow = base_config();
  narrow.timing.lane_width = 2;
  AccelConfig wide = base_config();
  wide.timing.lane_width = 16;
  // Compare pure compute by making the link very fast.
  narrow.link.words_per_second = 1.0e12;
  wide.link.words_per_second = 1.0e12;
  const DeviceProgram prog = compile_model(*model_);
  const auto n = Accelerator(narrow, prog).run(test_slice(10));
  const auto w = Accelerator(wide, prog).run(test_slice(10));
  EXPECT_GT(n.total_cycles, w.total_cycles);
}

TEST_F(AcceleratorFixture, RejectsNonPositiveClock) {
  AccelConfig cfg = base_config();
  cfg.clock_hz = 0.0;
  EXPECT_THROW(Accelerator(cfg, compile_model(*model_)),
               std::invalid_argument);
}

}  // namespace
}  // namespace mann::accel
