// Module-level tests of the accelerator: each of Fig. 1's blocks driven
// in isolation against hand-built device state, plus host-link behaviour
// that the end-to-end tests cannot pin down (rates, latency charging,
// synchronous gating).
#include <gtest/gtest.h>

#include <cmath>

#include "accel/control.hpp"
#include "accel/host_link.hpp"
#include "accel/input_write.hpp"
#include "accel/mem_module.hpp"
#include "accel/output_module.hpp"
#include "accel/read_module.hpp"
#include "sim/simulator.hpp"

namespace mann::accel {
namespace {

/// A tiny hand-built program: V=4 classes, E=2, 1 hop, identity-ish
/// weights chosen so every expected value can be computed by hand.
DeviceProgram tiny_program() {
  DeviceProgram p;
  p.vocab_size = 4;
  p.embedding_dim = 2;
  p.hops = 1;
  p.max_memory = 4;
  p.emb_a = FxMatrix(4, 2);
  p.emb_c = FxMatrix(4, 2);
  p.emb_q = FxMatrix(4, 2);
  p.w_r = FxMatrix(2, 2);
  p.w_o = FxMatrix(4, 2);
  // Word w embeds to a_w = (w+1, 0) in A and (0, w+1) in C.
  for (std::size_t w = 0; w < 4; ++w) {
    p.emb_a(w, 0) = Fx::from_float(static_cast<float>(w + 1));
    p.emb_c(w, 1) = Fx::from_float(static_cast<float>(w + 1));
    p.emb_q(w, 0) = Fx::from_float(1.0F);
    p.emb_q(w, 1) = Fx::from_float(0.5F);
  }
  // W_r = 0 so h == r exactly (Eq. 4 degenerates to the read vector).
  // W_o row i scores h[1] scaled by (i+1).
  for (std::size_t i = 0; i < 4; ++i) {
    p.w_o(i, 1) = Fx::from_float(static_cast<float>(i + 1));
  }
  return p;
}

AccelConfig tiny_config() {
  AccelConfig cfg;
  cfg.clock_hz = 1.0e6;
  cfg.timing.lane_width = 2;
  return cfg;
}

// ---- INPUT & WRITE ---------------------------------------------------------

TEST(InputWriteModule, AccumulatesAndFlushesSentences) {
  AcceleratorState state(tiny_program());
  state.begin_story();
  const AccelConfig cfg = tiny_config();
  sim::Fifo<InputCmd> cmds("CMD", 16);
  InputWriteModule module(state, cfg, cmds);

  cmds.push({InputCmdKind::kSentenceStart, 0});
  cmds.push({InputCmdKind::kContextWord, 1});  // a=(2,0), c=(0,2)
  cmds.push({InputCmdKind::kContextWord, 2});  // a+=(3,0), c+=(0,3)
  cmds.push({InputCmdKind::kQuestionStart, 0});
  cmds.push({InputCmdKind::kQuestionWord, 0});  // q=(1,0.5)
  cmds.push({InputCmdKind::kEndOfStory, 0});

  for (int i = 0; i < 40 && !state.input_done; ++i) {
    module.tick();
  }
  ASSERT_TRUE(state.input_done);
  ASSERT_EQ(state.mem_a.size(), 1U);
  EXPECT_FLOAT_EQ(state.mem_a[0][0].to_float(), 5.0F);
  EXPECT_FLOAT_EQ(state.mem_a[0][1].to_float(), 0.0F);
  EXPECT_FLOAT_EQ(state.mem_c[0][1].to_float(), 5.0F);
  EXPECT_FLOAT_EQ(state.reg_k[0].to_float(), 1.0F);
  EXPECT_FLOAT_EQ(state.reg_k[1].to_float(), 0.5F);
}

TEST(InputWriteModule, DropsOldestSlotWhenMemoryFull) {
  DeviceProgram prog = tiny_program();
  prog.max_memory = 2;
  AcceleratorState state(std::move(prog));
  state.begin_story();
  const AccelConfig cfg = tiny_config();
  sim::Fifo<InputCmd> cmds("CMD", 32);
  InputWriteModule module(state, cfg, cmds);

  for (const std::int32_t w : {0, 1, 2}) {  // three 1-word sentences
    cmds.push({InputCmdKind::kSentenceStart, 0});
    cmds.push({InputCmdKind::kContextWord, w});
  }
  cmds.push({InputCmdKind::kQuestionStart, 0});
  cmds.push({InputCmdKind::kEndOfStory, 0});
  for (int i = 0; i < 60 && !state.input_done; ++i) {
    module.tick();
  }
  ASSERT_TRUE(state.input_done);
  ASSERT_EQ(state.mem_a.size(), 2U);
  // Slots hold words 1 and 2 (word 0's sentence was evicted).
  EXPECT_FLOAT_EQ(state.mem_a[0][0].to_float(), 2.0F);
  EXPECT_FLOAT_EQ(state.mem_a[1][0].to_float(), 3.0F);
}

// ---- MEM -------------------------------------------------------------------

TEST(MemModule, ComputesSoftmaxAttentionAndWeightedRead) {
  AcceleratorState state(tiny_program());
  state.begin_story();
  // Two memory slots with known contents.
  state.mem_a = {{Fx::from_float(1.0F), Fx::from_float(0.0F)},
                 {Fx::from_float(3.0F), Fx::from_float(0.0F)}};
  state.mem_c = {{Fx::from_float(0.0F), Fx::from_float(1.0F)},
                 {Fx::from_float(0.0F), Fx::from_float(2.0F)}};
  state.reg_k = {Fx::from_float(1.0F), Fx::from_float(0.0F)};
  state.mem_request = true;

  MemModule module(state, tiny_config());
  for (int i = 0; i < 200 && !state.mem_done; ++i) {
    module.tick();
  }
  ASSERT_TRUE(state.mem_done);
  // Scores are 1 and 3 -> softmax = (0.119, 0.881).
  ASSERT_EQ(state.attention.size(), 2U);
  EXPECT_NEAR(state.attention[0].to_float(), 0.1192F, 5e-3F);
  EXPECT_NEAR(state.attention[1].to_float(), 0.8808F, 5e-3F);
  // r = a0*(0,1) + a1*(0,2).
  EXPECT_NEAR(state.reg_r[1].to_float(), 0.1192F + 2.0F * 0.8808F, 1e-2F);
  EXPECT_NEAR(state.reg_r[0].to_float(), 0.0F, 1e-4F);
  EXPECT_FALSE(state.mem_request);
  // Op accounting: 2 slots x 2 dims dots twice (address + read).
  EXPECT_EQ(module.stats().ops.mac, 8U);
  EXPECT_EQ(module.stats().ops.exp, 2U);
  EXPECT_EQ(module.stats().ops.div, 2U);
}

TEST(MemModule, EmptyMemoryIsAProtocolBug) {
  AcceleratorState state(tiny_program());
  state.begin_story();
  state.reg_k = {Fx::from_float(1.0F), Fx{}};
  state.mem_request = true;
  MemModule module(state, tiny_config());
  EXPECT_THROW(module.tick(), std::logic_error);
}

// ---- READ + MEM recurrence ---------------------------------------------------

TEST(ReadModule, RunsHopsAndRaisesFeaturesReady) {
  DeviceProgram prog = tiny_program();
  prog.hops = 2;
  AcceleratorState state(std::move(prog));
  state.begin_story();
  state.mem_a = {{Fx::from_float(1.0F), Fx{}}};
  state.mem_c = {{Fx{}, Fx::from_float(4.0F)}};
  state.reg_k = {Fx::from_float(1.0F), Fx{}};
  state.input_done = true;

  const AccelConfig cfg = tiny_config();
  ReadModule read(state, cfg);
  MemModule mem(state, cfg);
  sim::Simulator sim;
  sim.add_module(read);
  sim.add_module(mem);
  (void)sim.run_until([&] { return state.features_ready; }, 10'000);

  // One slot -> attention 1.0 -> r = (0,4); W_r = 0 -> h = r after
  // each hop (k2 = h1 = (0,4), same read again).
  EXPECT_EQ(state.hops_done, 2U);
  EXPECT_NEAR(state.reg_h[0].to_float(), 0.0F, 1e-4F);
  EXPECT_NEAR(state.reg_h[1].to_float(), 4.0F, 1e-2F);
  EXPECT_FALSE(state.read_busy);
}

// ---- OUTPUT ------------------------------------------------------------------

TEST(OutputModule, SequentialArgmaxWithoutIth) {
  AcceleratorState state(tiny_program());
  state.begin_story();
  state.reg_h = {Fx{}, Fx::from_float(1.0F)};  // logits = 1,2,3,4
  state.features_ready = true;

  const AccelConfig cfg = tiny_config();
  sim::Fifo<std::int32_t> out("OUT", 4);
  OutputModule module(state, cfg, out);
  sim::Simulator sim;
  sim.add_module(module);
  (void)sim.run_until([&] { return !out.empty(); }, 10'000);

  EXPECT_EQ(*out.peek(), 3);  // class with weight 4
  ASSERT_EQ(module.records().size(), 1U);
  EXPECT_EQ(module.records()[0].probes, 4U);
  EXPECT_FALSE(module.records()[0].early_exit);
  EXPECT_FALSE(state.story_active);
}

TEST(OutputModule, IthStopsAtFirstThresholdCross) {
  DeviceProgram prog = tiny_program();
  // Probe order 2,3,0,1; thresholds: class 2 fires when z > 2.5.
  prog.probe_order = {2, 3, 0, 1};
  prog.thresholds = {Fx::max(), Fx::max(), Fx::from_float(2.5F), Fx::max()};
  AcceleratorState state(std::move(prog));
  state.begin_story();
  state.reg_h = {Fx{}, Fx::from_float(1.0F)};  // logit of class 2 = 3
  state.features_ready = true;

  AccelConfig cfg = tiny_config();
  cfg.ith_enabled = true;
  sim::Fifo<std::int32_t> out("OUT", 4);
  OutputModule module(state, cfg, out);
  sim::Simulator sim;
  sim.add_module(module);
  (void)sim.run_until([&] { return !out.empty(); }, 10'000);

  EXPECT_EQ(*out.peek(), 2);
  EXPECT_EQ(module.records()[0].probes, 1U);
  EXPECT_TRUE(module.records()[0].early_exit);
}

TEST(OutputModule, IthFallsBackToArgmaxWhenNothingFires) {
  DeviceProgram prog = tiny_program();
  prog.probe_order = {0, 1, 2, 3};
  prog.thresholds.assign(4, Fx::max());
  AcceleratorState state(std::move(prog));
  state.begin_story();
  state.reg_h = {Fx{}, Fx::from_float(1.0F)};
  state.features_ready = true;

  AccelConfig cfg = tiny_config();
  cfg.ith_enabled = true;
  sim::Fifo<std::int32_t> out("OUT", 4);
  OutputModule module(state, cfg, out);
  sim::Simulator sim;
  sim.add_module(module);
  (void)sim.run_until([&] { return !out.empty(); }, 10'000);
  EXPECT_EQ(*out.peek(), 3);
  EXPECT_EQ(module.records()[0].probes, 4U);
  EXPECT_FALSE(module.records()[0].early_exit);
}

// ---- CONTROL -----------------------------------------------------------------

TEST(ControlModule, CountsModelWordsThenRaisesLoaded) {
  AcceleratorState state(tiny_program());
  const std::size_t words = state.program.model_words();
  sim::Fifo<StreamWord> in("IN", 64);
  sim::Fifo<InputCmd> cmds("CMD", 64);
  ControlModule control(state, in, cmds);
  for (std::size_t i = 0; i < words; ++i) {
    in.push({StreamOp::kModelWord, 0});
  }
  for (std::size_t i = 0; i < words; ++i) {
    EXPECT_FALSE(state.model_loaded);
    control.tick();
  }
  EXPECT_TRUE(state.model_loaded);
}

TEST(ControlModule, StoryBeforeModelLoadThrows) {
  AcceleratorState state(tiny_program());
  sim::Fifo<StreamWord> in("IN", 8);
  sim::Fifo<InputCmd> cmds("CMD", 8);
  ControlModule control(state, in, cmds);
  in.push({StreamOp::kStoryStart, 0});
  EXPECT_THROW(control.tick(), std::logic_error);
}

TEST(ControlModule, DataWordOutsideStoryThrows) {
  AcceleratorState state(tiny_program());
  state.model_loaded = true;
  sim::Fifo<StreamWord> in("IN", 8);
  sim::Fifo<InputCmd> cmds("CMD", 8);
  ControlModule control(state, in, cmds);
  in.push({StreamOp::kContextWord, 1});
  EXPECT_THROW(control.tick(), std::logic_error);
}

TEST(ControlModule, StallsOnBusyDatapathAndFullCmdFifo) {
  AcceleratorState state(tiny_program());
  state.model_loaded = true;
  sim::Fifo<StreamWord> in("IN", 8);
  sim::Fifo<InputCmd> cmds("CMD", 1);
  ControlModule control(state, in, cmds);

  in.push({StreamOp::kStoryStart, 0});
  control.tick();
  EXPECT_TRUE(state.story_active);

  // Fill the command FIFO; the next word must stall, not drop.
  in.push({StreamOp::kSentenceStart, 0});
  in.push({StreamOp::kContextWord, 1});
  control.tick();  // forwards sentence start
  control.tick();  // cmd fifo full -> stall
  EXPECT_EQ(in.size(), 1U);
  EXPECT_GT(control.stats().stall_cycles, 0U);

  // A second story while one is active stalls at the story boundary.
  (void)cmds.try_pop();
  control.tick();  // forwards the context word
  in.push({StreamOp::kStoryStart, 0});
  control.tick();
  EXPECT_EQ(in.size(), 1U);  // story start not consumed
}

// ---- HOST LINK ----------------------------------------------------------------

TEST(HostLinkModule, RespectsWordRate) {
  AccelConfig cfg = tiny_config();
  cfg.clock_hz = 1.0e6;
  cfg.link.words_per_second = 0.25e6;  // 1 word per 4 cycles
  cfg.link.model_words_per_second = 0.25e6;
  cfg.link.per_story_latency = 0.0;
  cfg.link.result_latency = 0.0;
  sim::Fifo<StreamWord> in("IN", 64);
  sim::Fifo<std::int32_t> out("OUT", 4);
  std::vector<StreamWord> words(16, {StreamOp::kModelWord, 0});
  HostLinkModule link(cfg, words, in, out);
  for (int i = 0; i < 32; ++i) {
    link.tick();
  }
  // 32 cycles at 0.25 words/cycle -> 8 words.
  EXPECT_EQ(in.size(), 8U);
  EXPECT_FALSE(link.all_words_sent());
}

TEST(HostLinkModule, ModelPhaseUsesBulkRate) {
  AccelConfig cfg = tiny_config();
  cfg.clock_hz = 1.0e6;
  cfg.link.words_per_second = 0.25e6;
  cfg.link.model_words_per_second = 1.0e6;  // 1 word/cycle for the model
  sim::Fifo<StreamWord> in("IN", 64);
  sim::Fifo<std::int32_t> out("OUT", 4);
  std::vector<StreamWord> words(10, {StreamOp::kModelWord, 0});
  HostLinkModule link(cfg, words, in, out);
  for (int i = 0; i < 10; ++i) {
    link.tick();
  }
  EXPECT_TRUE(link.all_words_sent());
}

TEST(HostLinkModule, ChargesPerStoryLatencyOnce) {
  AccelConfig cfg = tiny_config();
  cfg.clock_hz = 1.0e6;
  cfg.link.words_per_second = 1.0e6;
  cfg.link.per_story_latency = 5.0e-6;  // 5 cycles at 1 MHz
  cfg.link.result_latency = 0.0;
  sim::Fifo<StreamWord> in("IN", 64);
  sim::Fifo<std::int32_t> out("OUT", 4);
  std::vector<StreamWord> words = {{StreamOp::kStoryStart, 0},
                                   {StreamOp::kSentenceStart, 0},
                                   {StreamOp::kContextWord, 1}};
  HostLinkModule link(cfg, words, in, out);
  int cycles = 0;
  while (!link.all_words_sent() && cycles < 100) {
    link.tick();
    ++cycles;
  }
  // 5 latency cycles + 3 word cycles (+1 for the stalled first attempt).
  EXPECT_GE(cycles, 8);
  EXPECT_LE(cycles, 10);
}

TEST(HostLinkModule, SynchronousModeWaitsForAnswer) {
  AccelConfig cfg = tiny_config();
  cfg.clock_hz = 1.0e6;
  cfg.link.words_per_second = 1.0e6;
  cfg.link.per_story_latency = 0.0;
  cfg.link.result_latency = 0.0;
  cfg.link.synchronous_stories = true;
  sim::Fifo<StreamWord> in("IN", 64);
  sim::Fifo<std::int32_t> out("OUT", 4);
  std::vector<StreamWord> words = {{StreamOp::kStoryStart, 0},
                                   {StreamOp::kEndOfStory, 0},
                                   {StreamOp::kStoryStart, 0},
                                   {StreamOp::kEndOfStory, 0}};
  HostLinkModule link(cfg, words, in, out);
  for (int i = 0; i < 20; ++i) {
    link.tick();
  }
  // First story sent, second held back until an answer arrives.
  EXPECT_EQ(in.size(), 2U);
  out.push(1);
  for (int i = 0; i < 20; ++i) {
    link.tick();
  }
  EXPECT_TRUE(link.all_words_sent());
  ASSERT_EQ(link.answers().size(), 1U);
  EXPECT_EQ(link.answers()[0].prediction, 1);
}

TEST(HostLinkModule, AsynchronousModeStreamsAhead) {
  AccelConfig cfg = tiny_config();
  cfg.clock_hz = 1.0e6;
  cfg.link.words_per_second = 1.0e6;
  cfg.link.per_story_latency = 0.0;
  cfg.link.synchronous_stories = false;
  sim::Fifo<StreamWord> in("IN", 64);
  sim::Fifo<std::int32_t> out("OUT", 4);
  std::vector<StreamWord> words = {{StreamOp::kStoryStart, 0},
                                   {StreamOp::kEndOfStory, 0},
                                   {StreamOp::kStoryStart, 0},
                                   {StreamOp::kEndOfStory, 0}};
  HostLinkModule link(cfg, words, in, out);
  for (int i = 0; i < 20; ++i) {
    link.tick();
  }
  EXPECT_TRUE(link.all_words_sent());  // no gating on answers
}

}  // namespace
}  // namespace mann::accel
