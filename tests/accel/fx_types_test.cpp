#include "accel/fx_types.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "numeric/random.hpp"
#include "numeric/vector_ops.hpp"

namespace mann::accel {
namespace {

TEST(FxMatrix, ShapeAndAccess) {
  FxMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_EQ(m.cols(), 3U);
  EXPECT_EQ(m.size(), 6U);
  m(1, 2) = Fx::from_float(1.5F);
  EXPECT_FLOAT_EQ(m(1, 2).to_float(), 1.5F);
}

TEST(FxMatrix, RowSpanAliases) {
  FxMatrix m(2, 2);
  auto row = m.row(1);
  row[0] = Fx::from_float(-2.0F);
  EXPECT_FLOAT_EQ(m(1, 0).to_float(), -2.0F);
}

TEST(Quantize, RoundTripWithinLsb) {
  numeric::Rng rng(3);
  numeric::Matrix m(4, 5);
  for (float& v : m.data()) {
    v = rng.uniform(-2.0F, 2.0F);
  }
  const FxMatrix q = quantize(m);
  const numeric::Matrix back = dequantize(q);
  const float lsb = 1.0F / 65536.0F;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_NEAR(back(r, c), m(r, c), 0.5F * lsb + 1e-7F);
    }
  }
}

TEST(FxDot, MatchesFloatReference) {
  numeric::Rng rng(7);
  std::vector<float> fa(24);
  std::vector<float> fb(24);
  FxVector a(24);
  FxVector b(24);
  for (std::size_t i = 0; i < 24; ++i) {
    fa[i] = rng.uniform(-1.0F, 1.0F);
    fb[i] = rng.uniform(-1.0F, 1.0F);
    a[i] = Fx::from_float(fa[i]);
    b[i] = Fx::from_float(fb[i]);
  }
  const float ref = numeric::dot(fa, fb);
  EXPECT_NEAR(fx_dot(a, b).to_float(), ref, 24.0F * 3.0F / 65536.0F);
}

TEST(FxDot, LengthMismatchThrows) {
  FxVector a(3);
  FxVector b(2);
  EXPECT_THROW((void)fx_dot(a, b), std::invalid_argument);
}

TEST(FxAxpyAndAdd, Basics) {
  FxVector x = {Fx::from_float(1.0F), Fx::from_float(2.0F)};
  FxVector y = {Fx::from_float(10.0F), Fx::from_float(20.0F)};
  fx_axpy(Fx::from_float(0.5F), x, y);
  EXPECT_FLOAT_EQ(y[0].to_float(), 10.5F);
  EXPECT_FLOAT_EQ(y[1].to_float(), 21.0F);
  fx_add(x, y);
  EXPECT_FLOAT_EQ(y[0].to_float(), 11.5F);
  fx_clear(y);
  EXPECT_EQ(y[0], Fx{});
}

TEST(FxAxpy, MismatchThrows) {
  FxVector x(3);
  FxVector y(2);
  EXPECT_THROW(fx_axpy(Fx::from_float(1.0F), x, y), std::invalid_argument);
  EXPECT_THROW(fx_add(x, y), std::invalid_argument);
}

}  // namespace
}  // namespace mann::accel
