// mann_served, driven over a pipe: the daemon's line protocol is part of
// the public surface, so these tests exercise the real binary (path
// injected as MANN_SERVED_PATH by CMake) end to end — command parsing,
// err handling that keeps the daemon alive, live reconfiguration with
// requests in flight, byte-stable output at a fixed schedule, and
// replay equivalence against the daemon's own --closed-loop mode.
//
// All runs use --tiny models: protocol and scheduling behaviour only
// depend on cycle costs (shapes), so nothing here needs trained models.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef MANN_SERVED_PATH
#error "MANN_SERVED_PATH must point at the mann_served binary"
#endif

namespace {

std::filesystem::path temp_file(const std::string& name) {
  return std::filesystem::temp_directory_path() /
         ("mann_served_test_" + name);
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Runs the daemon with `flags`, feeding `commands` on stdin; returns
/// the full stdout transcript. popen is unidirectional, so the command
/// script goes through a file — which also mirrors how the CI replay
/// leg drives the daemon.
std::string run_daemon(const std::string& flags,
                       const std::string& commands,
                       const std::string& tag) {
  const std::filesystem::path script = temp_file(tag + ".cmds");
  {
    std::ofstream out(script);
    out << commands;
  }
  const std::string cmd = std::string(MANN_SERVED_PATH) + " " + flags +
                          " < " + script.string() + " 2>/dev/null";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string transcript;
  char buffer[4096];
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr) {
    transcript += buffer;
  }
  const int rc = ::pclose(pipe);
  EXPECT_EQ(rc, 0) << "daemon exited non-zero for: " << cmd;
  std::filesystem::remove(script);
  return transcript;
}

std::size_t count_lines_with(const std::string& transcript,
                             const std::string& needle) {
  std::size_t count = 0;
  std::istringstream in(transcript);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(needle) == 0) {
      ++count;
    }
  }
  return count;
}

TEST(ServedDaemon, SubmitInfoDrainQuitRoundTrip) {
  const std::string transcript = run_daemon(
      "--tiny 2",
      "submit 0\n"
      "submit 1\n"
      "info\n"
      "drain\n"
      "quit\n",
      "roundtrip");
  EXPECT_EQ(count_lines_with(transcript, "ready "), 1U);
  EXPECT_EQ(count_lines_with(transcript, "ok id="), 2U);
  EXPECT_EQ(count_lines_with(transcript, "done id="), 2U);
  EXPECT_EQ(count_lines_with(transcript, "info cycle="), 1U);
  EXPECT_EQ(count_lines_with(transcript, "ok quit"), 1U);
  EXPECT_EQ(count_lines_with(transcript, "bye "), 1U);
  EXPECT_NE(transcript.find("completed=2"), std::string::npos);
}

TEST(ServedDaemon, MalformedCommandsGetErrAndTheDaemonSurvives) {
  const std::string transcript = run_daemon(
      "--tiny 2",
      "bogus\n"
      "submit\n"
      "submit notanumber\n"
      "submit 99\n"
      "config policy sjf\n"
      "config tenant 0\n"
      "trace on\n"
      "submit 0\n"
      "quit\n",
      "malformed");
  EXPECT_EQ(count_lines_with(transcript, "err "), 7U);
  // The daemon kept serving after every rejection.
  EXPECT_EQ(count_lines_with(transcript, "ok id="), 1U);
  EXPECT_EQ(count_lines_with(transcript, "bye "), 1U);
  EXPECT_NE(transcript.find("offered=1"), std::string::npos);
}

TEST(ServedDaemon, LiveReconfigurationLandsWithRequestsInFlight) {
  // Lockstep holds the clock at the last arrival, so the config
  // commands land while earlier submissions are still queued/in
  // flight; nothing may be dropped.
  const std::string transcript = run_daemon(
      "--tiny 2 --tenants 3 --lockstep",
      "submit 0 0 0 1000\n"
      "submit 1 1 0 1100\n"
      "submit 0 2 0 1200\n"
      "config tenant 1 1 5.0 0 8 2000000\n"
      "config slo 2000000\n"
      "config policy edf\n"
      "config policy wfq\n"
      "submit 1 1 0 5000\n"
      "drain\n"
      "quit\n",
      "reconfig");
  EXPECT_EQ(count_lines_with(transcript, "ok config tenant 1"), 1U);
  EXPECT_EQ(count_lines_with(transcript, "ok config slo"), 1U);
  EXPECT_EQ(count_lines_with(transcript, "ok config policy edf"), 1U);
  EXPECT_EQ(count_lines_with(transcript, "ok config policy wfq"), 1U);
  EXPECT_EQ(count_lines_with(transcript, "done id="), 4U);
  EXPECT_EQ(count_lines_with(transcript, "shed id="), 0U);
  EXPECT_NE(transcript.find("completed=4 rejected=0"), std::string::npos);
}

TEST(ServedDaemon, WfqSwitchNeedsWfqConstruction) {
  // --tenants 1 defaults to EDF construction: no tenant lanes, so the
  // live switch to WFQ must refuse (err) without killing the daemon.
  const std::string transcript = run_daemon(
      "--tiny 2 --tenants 1",
      "config policy wfq\n"
      "config policy fifo\n"
      "quit\n",
      "wfq_refusal");
  EXPECT_EQ(count_lines_with(transcript, "err policy wfq"), 1U);
  EXPECT_EQ(count_lines_with(transcript, "ok config policy fifo"), 1U);
  EXPECT_EQ(count_lines_with(transcript, "bye "), 1U);
}

TEST(ServedDaemon, TranscriptIsByteStableAtAFixedSchedule) {
  const std::string commands =
      "submit 0 0 0 500\n"
      "submit 1 1 0 500\n"
      "submit 0 2 0 900\n"
      "submit 1 0 0 40000\n"
      "submit 0 1 0 40100\n"
      "info\n"
      "drain\n"
      "quit\n";
  const std::string first =
      run_daemon("--tiny 2 --tenants 3 --lockstep", commands, "stable_a");
  const std::string second =
      run_daemon("--tiny 2 --tenants 3 --lockstep", commands, "stable_b");
  EXPECT_EQ(first, second);
  EXPECT_EQ(count_lines_with(first, "done id="), 5U);
}

TEST(ServedDaemon, LockstepReplayMatchesClosedLoop) {
  // The acceptance gate in miniature: one arrival schedule served twice
  // — open loop through the protocol under --lockstep, closed loop via
  // --closed-loop — must produce byte-identical report JSON.
  const std::filesystem::path trace = temp_file("equiv.csv");
  {
    const struct { unsigned long long at; int task; int tenant; } rows[] = {
        {1'000, 0, 0}, {1'000, 1, 1}, {1'500, 0, 2},  {60'000, 1, 0},
        {60'200, 0, 1}, {61'000, 1, 2}, {300'000, 0, 0},
    };
    std::string commands;
    {
      std::ofstream out(trace);  // closed before the daemon reads it
      out << "arrival_cycle,task_id,tenant_id\n";
      for (const auto& row : rows) {
        out << row.at << "," << row.task << "," << row.tenant << "\n";
        commands += "submit " + std::to_string(row.task) + " " +
                    std::to_string(row.tenant) + " 0 " +
                    std::to_string(row.at) + "\n";
      }
      commands += "drain\nquit\n";
    }
    const std::filesystem::path open_json = temp_file("equiv_open.json");
    const std::string transcript = run_daemon(
        "--tiny 2 --tenants 3 --lockstep --report-json " +
            open_json.string(),
        commands, "equiv_open");
    EXPECT_EQ(count_lines_with(transcript, "done id="), 7U);

    const std::filesystem::path closed_json =
        temp_file("equiv_closed.json");
    const std::string closed_cmd =
        std::string(MANN_SERVED_PATH) + " --tiny 2 --tenants 3" +
        " --closed-loop " + trace.string() + " --report-json " +
        closed_json.string() + " > /dev/null 2>&1";
    ASSERT_EQ(std::system(closed_cmd.c_str()), 0);

    const std::string open_report = read_file(open_json);
    const std::string closed_report = read_file(closed_json);
    ASSERT_FALSE(open_report.empty());
    EXPECT_EQ(open_report, closed_report);
    std::filesystem::remove(open_json);
    std::filesystem::remove(closed_json);
  }
  std::filesystem::remove(trace);
}

}  // namespace
