// Cross-module integration: data -> model -> ITH -> accelerator -> power,
// asserting the qualitative shapes the paper reports (the quantitative
// sweeps live in bench/).
#include <gtest/gtest.h>

#include "core/ith_eval.hpp"
#include "model/serialize.hpp"
#include "power/power_model.hpp"
#include "runtime/measurement.hpp"

namespace mann {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    runtime::PrepareConfig cfg = runtime::default_prepare_config();
    cfg.dataset.train_stories = 400;
    cfg.dataset.test_stories = 150;
    cfg.train.epochs = 15;
    // Two structurally different tasks.
    qa1_ = new runtime::TaskArtifacts(runtime::prepare_task(
        data::TaskId::kSingleSupportingFact, cfg));
    qa12_ = new runtime::TaskArtifacts(
        runtime::prepare_task(data::TaskId::kConjunction, cfg));
  }

  static void TearDownTestSuite() {
    delete qa1_;
    delete qa12_;
    qa1_ = nullptr;
    qa12_ = nullptr;
  }

  static runtime::TaskArtifacts* qa1_;
  static runtime::TaskArtifacts* qa12_;
};

runtime::TaskArtifacts* EndToEnd::qa1_ = nullptr;
runtime::TaskArtifacts* EndToEnd::qa12_ = nullptr;

TEST_F(EndToEnd, BothTasksLearn) {
  EXPECT_GT(qa1_->test_accuracy, 0.55F);
  EXPECT_GT(qa12_->test_accuracy, 0.55F);
}

TEST_F(EndToEnd, FrequencySweepIsSublinear) {
  // Table I shape: time falls with clock but saturates (host interface).
  double prev_seconds = 1e30;
  double prev_speedup_gain = 1e30;
  double t25 = 0.0;
  for (const double mhz : {25.0, 50.0, 75.0, 100.0}) {
    runtime::FpgaRunOptions opt;
    opt.clock_hz = mhz * 1.0e6;
    const auto row = runtime::measure_fpga(*qa1_, opt);
    EXPECT_LT(row.energy.seconds, prev_seconds) << mhz;
    if (mhz == 25.0) {
      t25 = row.energy.seconds;
    }
    prev_seconds = row.energy.seconds;
    (void)prev_speedup_gain;
  }
  // 4x clock gives well under 4x time reduction.
  EXPECT_GT(prev_seconds, t25 / 4.0);
}

TEST_F(EndToEnd, PowerRisesWithClockButEfficiencyImproves) {
  // Table I: mean power rises with clock (14.71 -> 20.10 W) yet the
  // normalized FLOPS/kJ column still improves (83.74 -> 126.72), because
  // the time saving outweighs the power increase under the rate-per-energy
  // metric. Raw joules are nearly flat (640 J vs 609 J in the paper), so
  // we assert the metric, not raw energy.
  runtime::FpgaRunOptions slow;
  slow.clock_hz = 25.0e6;
  runtime::FpgaRunOptions fast;
  fast.clock_hz = 100.0e6;
  const auto r25 = runtime::measure_fpga(*qa1_, slow);
  const auto r100 = runtime::measure_fpga(*qa1_, fast);
  EXPECT_LT(r25.energy.watts, r100.energy.watts);
  EXPECT_GT(r100.energy.flops_per_kj(), r25.energy.flops_per_kj());
}

TEST_F(EndToEnd, IthSavesTimeAndEnergyMoreAtLowClock) {
  // §V: "Inference thresholding is more beneficial at low operating
  // frequencies."
  auto saving = [&](double clock_hz) {
    runtime::FpgaRunOptions plain;
    plain.clock_hz = clock_hz;
    runtime::FpgaRunOptions ith;
    ith.clock_hz = clock_hz;
    ith.ith = true;
    const double t_plain =
        runtime::measure_fpga(*qa1_, plain).energy.seconds;
    const double t_ith = runtime::measure_fpga(*qa1_, ith).energy.seconds;
    return (t_plain - t_ith) / t_plain;
  };
  const double save25 = saving(25.0e6);
  const double save100 = saving(100.0e6);
  EXPECT_GT(save25, 0.0);
  EXPECT_GE(save25, save100 - 0.02);
}

TEST_F(EndToEnd, FpgaDominatesEnergyEfficiencyAcrossTasks) {
  for (runtime::TaskArtifacts* art : {qa1_, qa12_}) {
    const auto gpu = runtime::measure_baseline(runtime::gpu_baseline(),
                                               *art, 100);
    runtime::FpgaRunOptions opt;
    opt.clock_hz = 25.0e6;
    opt.repetitions = 100;
    const auto fpga = runtime::measure_fpga(*art, opt);
    const auto n = power::normalize(fpga.energy, gpu.energy);
    EXPECT_GT(n.speedup, 1.2);
    EXPECT_GT(n.energy_efficiency, 3.0);
  }
}

TEST_F(EndToEnd, AcceleratorAccuracyTracksModelAccuracy) {
  runtime::FpgaRunOptions opt;
  for (runtime::TaskArtifacts* art : {qa1_, qa12_}) {
    const auto row = runtime::measure_fpga(*art, opt);
    EXPECT_NEAR(row.accuracy, static_cast<double>(art->test_accuracy),
                0.05);
  }
}

TEST_F(EndToEnd, SerializedModelReproducesAcceleratorRun) {
  // model -> disk -> model -> device: same predictions.
  const std::string path = ::testing::TempDir() + "/e2e_model.bin";
  model::save_model_file(path, qa1_->model);
  const model::MemN2N loaded = model::load_model_file(path);

  const accel::DeviceProgram p1 = accel::compile_model(qa1_->model);
  const accel::DeviceProgram p2 = accel::compile_model(loaded);
  accel::AccelConfig cfg;
  const auto r1 = accel::Accelerator(cfg, p1).run(
      std::span<const data::EncodedStory>(qa1_->dataset.test.data(), 20));
  const auto r2 = accel::Accelerator(cfg, p2).run(
      std::span<const data::EncodedStory>(qa1_->dataset.test.data(), 20));
  ASSERT_EQ(r1.stories.size(), r2.stories.size());
  for (std::size_t i = 0; i < r1.stories.size(); ++i) {
    EXPECT_EQ(r1.stories[i].prediction, r2.stories[i].prediction);
  }
  EXPECT_EQ(r1.total_cycles, r2.total_cycles);
}

}  // namespace
}  // namespace mann
