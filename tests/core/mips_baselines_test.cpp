#include "core/mips_baselines.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "numeric/vector_ops.hpp"

namespace mann::core {
namespace {

/// Rows with well-separated directions so approximate schemes should have
/// an easy time; plus a cluster of decoys.
numeric::Matrix make_weights(std::size_t rows, std::size_t dim,
                             std::uint64_t seed) {
  numeric::Rng rng(seed);
  numeric::Matrix m(rows, dim);
  for (float& v : m.data()) {
    v = rng.normal();
  }
  return m;
}

std::vector<float> make_query(std::size_t dim, std::uint64_t seed) {
  numeric::Rng rng(seed);
  std::vector<float> q(dim);
  for (float& v : q) {
    v = rng.normal();
  }
  return q;
}

TEST(ExactMips, MatchesArgmaxAndCountsAllRows) {
  const auto w = make_weights(37, 12, 1);
  const ExactMips mips(w);
  const auto q = make_query(12, 2);
  const MipsResult r = mips.query(q);
  EXPECT_EQ(r.dot_products, 37U);
  EXPECT_EQ(r.overhead_ops, 0U);
  EXPECT_EQ(r.index, numeric::argmax(numeric::matvec(w, q)));
}

TEST(ExactMips, RejectsEmpty) {
  const numeric::Matrix empty;
  EXPECT_THROW(ExactMips{empty}, std::invalid_argument);
}

TEST(AlshMips, HighRecallWithGenerousTables) {
  const auto w = make_weights(64, 16, 3);
  AlshMips::Config cfg;
  cfg.tables = 24;
  cfg.bits = 4;
  const AlshMips alsh(w, cfg);
  const ExactMips exact(w);
  std::size_t hits = 0;
  for (std::uint64_t s = 0; s < 100; ++s) {
    const auto q = make_query(16, 100 + s);
    if (alsh.query(q).index == exact.query(q).index) {
      ++hits;
    }
  }
  EXPECT_GE(hits, 80U);
}

TEST(AlshMips, CandidateScanIsUsuallyPartial) {
  const auto w = make_weights(256, 16, 4);
  AlshMips::Config cfg;
  cfg.tables = 4;
  cfg.bits = 8;
  const AlshMips alsh(w, cfg);
  double mean_candidates = 0.0;
  for (std::uint64_t s = 0; s < 50; ++s) {
    mean_candidates +=
        static_cast<double>(alsh.query(make_query(16, 200 + s)).dot_products);
  }
  mean_candidates /= 50.0;
  EXPECT_LT(mean_candidates, 256.0);
  EXPECT_GT(mean_candidates, 0.0);
}

TEST(AlshMips, ChargesHashOverhead) {
  const auto w = make_weights(32, 8, 5);
  AlshMips::Config cfg;
  cfg.tables = 6;
  cfg.bits = 5;
  const AlshMips alsh(w, cfg);
  const auto r = alsh.query(make_query(8, 6));
  EXPECT_EQ(r.overhead_ops, 30U);
}

TEST(AlshMips, DeterministicForSeed) {
  const auto w = make_weights(64, 12, 7);
  AlshMips::Config cfg;
  cfg.seed = 99;
  const AlshMips a(w, cfg);
  const AlshMips b(w, cfg);
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto q = make_query(12, 300 + s);
    const auto ra = a.query(q);
    const auto rb = b.query(q);
    EXPECT_EQ(ra.index, rb.index);
    EXPECT_EQ(ra.dot_products, rb.dot_products);
  }
}

TEST(AlshMips, RejectsBadGeometry) {
  const auto w = make_weights(8, 4, 8);
  AlshMips::Config cfg;
  cfg.bits = 0;
  EXPECT_THROW(AlshMips(w, cfg), std::invalid_argument);
  cfg.bits = 30;
  EXPECT_THROW(AlshMips(w, cfg), std::invalid_argument);
}

TEST(ClusterMips, PerfectRecallWhenProbingAllClusters) {
  const auto w = make_weights(48, 10, 9);
  ClusterMips::Config cfg;
  cfg.clusters = 6;
  cfg.probe_clusters = 6;
  const ClusterMips cm(w, cfg);
  const ExactMips exact(w);
  for (std::uint64_t s = 0; s < 40; ++s) {
    const auto q = make_query(10, 400 + s);
    EXPECT_EQ(cm.query(q).index, exact.query(q).index);
  }
}

TEST(ClusterMips, PartialProbeScansFewerRows) {
  const auto w = make_weights(128, 12, 10);
  ClusterMips::Config cfg;
  cfg.clusters = 16;
  cfg.probe_clusters = 2;
  const ClusterMips cm(w, cfg);
  const auto r = cm.query(make_query(12, 11));
  EXPECT_LT(r.dot_products, 128U);
  EXPECT_EQ(r.overhead_ops, 16U);
}

TEST(ClusterMips, AssignmentCoversEveryRow) {
  const auto w = make_weights(60, 8, 12);
  ClusterMips::Config cfg;
  cfg.clusters = 5;
  const ClusterMips cm(w, cfg);
  ASSERT_EQ(cm.assignment().size(), 60U);
  for (const std::uint32_t c : cm.assignment()) {
    EXPECT_LT(c, 5U);
  }
}

TEST(ClusterMips, GoodRecallOnClusteredData) {
  // Rows drawn around 4 well-separated directions; probing the best
  // cluster should almost always find the exact winner.
  numeric::Rng rng(13);
  const std::size_t dim = 16;
  numeric::Matrix w(80, dim);
  numeric::Matrix centers(4, dim);
  for (float& v : centers.data()) {
    v = rng.normal() * 5.0F;
  }
  for (std::size_t i = 0; i < w.rows(); ++i) {
    const auto c = centers.row(i % 4);
    for (std::size_t d = 0; d < dim; ++d) {
      w(i, d) = c[d] + rng.normal() * 0.3F;
    }
  }
  ClusterMips::Config cfg;
  cfg.clusters = 4;
  cfg.probe_clusters = 1;
  const ClusterMips cm(w, cfg);
  const ExactMips exact(w);
  std::size_t hits = 0;
  for (std::uint64_t s = 0; s < 60; ++s) {
    // Queries aligned with a (noisy) cluster direction — the regime
    // clustering MIPS is designed for.
    std::vector<float> q(dim);
    const auto center = centers.row(s % 4);
    numeric::Rng qrng(500 + s);
    for (std::size_t d = 0; d < dim; ++d) {
      q[d] = center[d] + qrng.normal() * 0.5F;
    }
    if (cm.query(q).index == exact.query(q).index) {
      ++hits;
    }
  }
  EXPECT_GE(hits, 48U);  // >= 80%
}

TEST(ClusterMips, ClampsClusterCounts) {
  const auto w = make_weights(3, 4, 14);
  ClusterMips::Config cfg;
  cfg.clusters = 10;       // > rows
  cfg.probe_clusters = 10;
  const ClusterMips cm(w, cfg);
  const auto r = cm.query(make_query(4, 15));
  EXPECT_LE(r.overhead_ops, 3U);
  EXPECT_LE(r.dot_products, 3U);
}

}  // namespace
}  // namespace mann::core
