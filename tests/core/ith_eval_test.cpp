#include "core/ith_eval.hpp"

#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "model/trainer.hpp"

namespace mann::core {
namespace {

struct Prepared {
  data::TaskDataset dataset;
  model::MemN2N model;
};

Prepared prepare() {
  data::DatasetConfig dc;
  dc.train_stories = 250;
  dc.test_stories = 80;
  dc.seed = 21;
  data::TaskDataset ds =
      data::build_task_dataset(data::TaskId::kSingleSupportingFact, dc);
  model::ModelConfig mc;
  mc.vocab_size = ds.vocab_size();
  mc.embedding_dim = 16;
  mc.hops = 3;
  numeric::Rng rng(9);
  model::MemN2N net(mc, rng);
  model::TrainConfig tc;
  tc.epochs = 12;
  model::train(net, ds.train, tc);
  return {std::move(ds), std::move(net)};
}

TEST(IthEval, FullMipsBaselineShape) {
  const Prepared p = prepare();
  const IthEvaluation ev = evaluate_full_mips(p.model, p.dataset.test);
  EXPECT_EQ(ev.stories, p.dataset.test.size());
  EXPECT_FLOAT_EQ(ev.normalized_comparisons, 1.0F);
  EXPECT_FLOAT_EQ(ev.mean_comparisons,
                  static_cast<float>(p.model.config().vocab_size));
  EXPECT_EQ(ev.early_exit_rate, 0.0F);
  EXPECT_GT(ev.accuracy, 0.5F);
}

TEST(IthEval, IthReducesComparisonsAtMatchedAccuracy) {
  const Prepared p = prepare();
  const auto ith =
      InferenceThresholding::calibrate(p.model, p.dataset.train, {});
  const IthEvaluation base = evaluate_full_mips(p.model, p.dataset.test);
  const IthEvaluation ev = evaluate_ith(p.model, ith, p.dataset.test);
  EXPECT_LE(ev.normalized_comparisons, 1.0F);
  EXPECT_LT(ev.mean_comparisons, base.mean_comparisons);
  EXPECT_NEAR(ev.accuracy, base.accuracy, 0.02F);
}

TEST(IthEval, OrderingBeatsNaturalOrder) {
  const Prepared p = prepare();
  const auto ith =
      InferenceThresholding::calibrate(p.model, p.dataset.train, {});
  const IthEvaluation ordered =
      evaluate_ith(p.model, ith, p.dataset.test, true);
  const IthEvaluation natural =
      evaluate_ith(p.model, ith, p.dataset.test, false);
  EXPECT_LE(ordered.mean_comparisons, natural.mean_comparisons);
}

TEST(IthEval, EmptyTestSetYieldsZeros) {
  const Prepared p = prepare();
  const auto ith =
      InferenceThresholding::calibrate(p.model, p.dataset.train, {});
  const IthEvaluation ev = evaluate_ith(p.model, ith, {});
  EXPECT_EQ(ev.stories, 0U);
  EXPECT_EQ(ev.accuracy, 0.0F);
  const IthEvaluation base = evaluate_full_mips(p.model, {});
  EXPECT_EQ(base.stories, 0U);
}

TEST(IthEval, RhoSweepIsMonotoneInComparisons) {
  // Fig. 3's x-axis: decreasing rho never increases comparisons.
  const Prepared p = prepare();
  float prev_comparisons = static_cast<float>(p.model.config().vocab_size);
  for (const float rho : {1.0F, 0.99F, 0.95F, 0.9F}) {
    IthConfig cfg;
    cfg.rho = rho;
    const auto ith =
        InferenceThresholding::calibrate(p.model, p.dataset.train, cfg);
    const IthEvaluation ev = evaluate_ith(p.model, ith, p.dataset.test);
    EXPECT_LE(ev.mean_comparisons, prev_comparisons + 1e-3F)
        << "rho=" << rho;
    prev_comparisons = ev.mean_comparisons;
  }
}

}  // namespace
}  // namespace mann::core
