#include "core/ith.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/dataset.hpp"
#include "model/trainer.hpp"

namespace mann::core {
namespace {

/// Shared fixture: one trained qa1 model + its dataset (training is the
/// slow part, do it once per suite).
class IthFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetConfig dc;
    dc.train_stories = 350;
    dc.test_stories = 100;
    dc.seed = 404;
    dataset_ = new data::TaskDataset(
        data::build_task_dataset(data::TaskId::kSingleSupportingFact, dc));

    model::ModelConfig mc;
    mc.vocab_size = dataset_->vocab_size();
    mc.embedding_dim = 16;
    mc.hops = 3;
    numeric::Rng rng(5);
    model_ = new model::MemN2N(mc, rng);
    model::TrainConfig tc;
    tc.epochs = 15;
    model::train(*model_, dataset_->train, tc);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }

  static data::TaskDataset* dataset_;
  static model::MemN2N* model_;
};

data::TaskDataset* IthFixture::dataset_ = nullptr;
model::MemN2N* IthFixture::model_ = nullptr;

TEST_F(IthFixture, CalibrationPopulatesAllTables) {
  IthConfig cfg;
  cfg.rho = 1.0F;
  const auto ith =
      InferenceThresholding::calibrate(*model_, dataset_->train, cfg);
  const std::size_t classes = model_->config().vocab_size;
  EXPECT_EQ(ith.thresholds().size(), classes);
  EXPECT_EQ(ith.silhouettes().size(), classes);
  EXPECT_EQ(ith.priors().size(), classes);
  EXPECT_EQ(ith.probe_order().size(), classes);
  EXPECT_GT(ith.active_classes(), 0U);
  EXPECT_LE(ith.active_classes(), classes);
}

TEST_F(IthFixture, PriorsFormDistributionOverLabels) {
  const auto ith = InferenceThresholding::calibrate(*model_,
                                                    dataset_->train, {});
  float sum = 0.0F;
  for (const float p : ith.priors()) {
    EXPECT_GE(p, 0.0F);
    EXPECT_LE(p, 1.0F);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0F, 1e-4F);
}

TEST_F(IthFixture, ProbeOrderIsAPermutationSortedBySilhouette) {
  const auto ith = InferenceThresholding::calibrate(*model_,
                                                    dataset_->train, {});
  const auto& order = ith.probe_order();
  const std::set<std::size_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), order.size());
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_GE(ith.silhouettes()[order[i]], ith.silhouettes()[order[i + 1]]);
  }
}

TEST_F(IthFixture, AnswerClassesHaveHighSilhouette) {
  // Classes that actually occur as labels (locations) should rank above
  // classes that never do (e.g. function words like "the").
  const auto ith = InferenceThresholding::calibrate(*model_,
                                                    dataset_->train, {});
  const auto the_id = dataset_->vocab.find("the");
  ASSERT_TRUE(the_id.has_value());
  float best_label_sil = -2.0F;
  for (std::size_t i = 0; i < ith.priors().size(); ++i) {
    if (ith.priors()[i] > 0.0F) {
      best_label_sil = std::max(best_label_sil, ith.silhouettes()[i]);
    }
  }
  EXPECT_GT(best_label_sil,
            ith.silhouettes()[static_cast<std::size_t>(*the_id)]);
}

TEST_F(IthFixture, NonLabelClassesGetNoThreshold) {
  const auto ith = InferenceThresholding::calibrate(*model_,
                                                    dataset_->train, {});
  for (std::size_t i = 0; i < ith.priors().size(); ++i) {
    if (ith.priors()[i] == 0.0F) {
      EXPECT_EQ(ith.thresholds()[i], InferenceThresholding::kNoThreshold);
    }
  }
}

TEST_F(IthFixture, RhoAboveOneDisablesAllThresholds) {
  IthConfig cfg;
  cfg.rho = 1.5F;
  const auto ith =
      InferenceThresholding::calibrate(*model_, dataset_->train, cfg);
  EXPECT_EQ(ith.active_classes(), 0U);
  // Every prediction must then match plain argmax.
  for (const auto& story : dataset_->test) {
    const auto r = ith.predict(*model_, story);
    EXPECT_FALSE(r.early_exit);
    EXPECT_EQ(r.comparisons, model_->config().vocab_size);
    EXPECT_EQ(r.prediction, model_->predict(story));
  }
}

TEST_F(IthFixture, LowerRhoLowersThresholds) {
  IthConfig tight;
  tight.rho = 1.0F;
  IthConfig loose;
  loose.rho = 0.9F;
  const auto t =
      InferenceThresholding::calibrate(*model_, dataset_->train, tight);
  const auto l =
      InferenceThresholding::calibrate(*model_, dataset_->train, loose);
  // Thresholds can only move down (or appear) as rho decreases.
  std::size_t lowered = 0;
  for (std::size_t i = 0; i < t.thresholds().size(); ++i) {
    EXPECT_LE(l.thresholds()[i], t.thresholds()[i]) << "class " << i;
    if (l.thresholds()[i] < t.thresholds()[i]) {
      ++lowered;
    }
  }
  EXPECT_GT(lowered, 0U);
  EXPECT_GE(l.active_classes(), t.active_classes());
}

TEST_F(IthFixture, LowerRhoFewerComparisons) {
  IthConfig tight;
  tight.rho = 1.0F;
  IthConfig loose;
  loose.rho = 0.9F;
  const auto t =
      InferenceThresholding::calibrate(*model_, dataset_->train, tight);
  const auto l =
      InferenceThresholding::calibrate(*model_, dataset_->train, loose);
  std::uint64_t comp_t = 0;
  std::uint64_t comp_l = 0;
  for (const auto& story : dataset_->test) {
    comp_t += t.predict(*model_, story).comparisons;
    comp_l += l.predict(*model_, story).comparisons;
  }
  EXPECT_LT(comp_l, comp_t);
}

TEST_F(IthFixture, IndexOrderingReducesComparisons) {
  const auto ith = InferenceThresholding::calibrate(*model_,
                                                    dataset_->train, {});
  std::uint64_t ordered = 0;
  std::uint64_t natural = 0;
  for (const auto& story : dataset_->test) {
    ordered += ith.predict(*model_, story, true).comparisons;
    natural += ith.predict(*model_, story, false).comparisons;
  }
  EXPECT_LE(ordered, natural);
}

TEST_F(IthFixture, EarlyExitRequiresThresholdCross) {
  const auto ith = InferenceThresholding::calibrate(*model_,
                                                    dataset_->train, {});
  for (const auto& story : dataset_->test) {
    const auto r = ith.predict(*model_, story);
    if (r.early_exit) {
      EXPECT_LT(r.comparisons, model_->config().vocab_size);
    } else {
      EXPECT_EQ(r.comparisons, model_->config().vocab_size);
      // Fallback must agree exactly with plain argmax.
      EXPECT_EQ(r.prediction, model_->predict(story));
    }
  }
}

TEST_F(IthFixture, RhoOneBarelyChangesAccuracy) {
  // The paper sets rho = 1.0 and reports < 0.1% accuracy loss.
  const auto ith = InferenceThresholding::calibrate(*model_,
                                                    dataset_->train, {});
  std::size_t plain_correct = 0;
  std::size_t ith_correct = 0;
  for (const auto& story : dataset_->test) {
    if (model_->predict(story) == static_cast<std::size_t>(story.answer)) {
      ++plain_correct;
    }
    if (ith.predict(*model_, story).prediction ==
        static_cast<std::size_t>(story.answer)) {
      ++ith_correct;
    }
  }
  const auto n = static_cast<float>(dataset_->test.size());
  EXPECT_NEAR(static_cast<float>(ith_correct) / n,
              static_cast<float>(plain_correct) / n, 0.02F);
}

TEST_F(IthFixture, PredictFromFeaturesMatchesPredict) {
  const auto ith = InferenceThresholding::calibrate(*model_,
                                                    dataset_->train, {});
  for (std::size_t i = 0; i < 10; ++i) {
    const auto& story = dataset_->test[i];
    const auto features = model_->forward_features(story);
    const auto a = ith.predict(*model_, story);
    const auto b = ith.predict_from_features(*model_, features);
    EXPECT_EQ(a.prediction, b.prediction);
    EXPECT_EQ(a.comparisons, b.comparisons);
    EXPECT_EQ(a.early_exit, b.early_exit);
  }
}

TEST(Ith, UntrainedModelCalibratesConservatively) {
  // An untrained model rarely predicts correctly; most classes should hold
  // no threshold and inference must still be exact (argmax fallback).
  model::ModelConfig mc;
  mc.vocab_size = 15;
  mc.embedding_dim = 4;
  mc.hops = 1;
  numeric::Rng rng(2);
  const model::MemN2N net(mc, rng);
  data::DatasetConfig dc;
  dc.train_stories = 30;
  dc.test_stories = 10;
  const auto ds =
      data::build_task_dataset(data::TaskId::kSingleSupportingFact, dc);
  // Re-encode impossible: vocab mismatch; instead build tiny stories.
  std::vector<data::EncodedStory> stories;
  for (int i = 0; i < 20; ++i) {
    data::EncodedStory s;
    s.context = {{static_cast<std::int32_t>(i % 10)}};
    s.question = {static_cast<std::int32_t>((i + 1) % 10)};
    s.answer = static_cast<std::int32_t>((i * 3) % 15);
    stories.push_back(s);
  }
  const auto ith = InferenceThresholding::calibrate(net, stories, {});
  for (const auto& story : stories) {
    const auto r = ith.predict(net, story);
    if (!r.early_exit) {
      EXPECT_EQ(r.prediction, net.predict(story));
    }
  }
}

}  // namespace
}  // namespace mann::core
