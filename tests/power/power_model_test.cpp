#include "power/power_model.hpp"

#include <gtest/gtest.h>

namespace mann::power {
namespace {

accel::RunResult synthetic_run(sim::Cycle cycles, sim::Cycle link_cycles,
                               std::uint64_t macs) {
  accel::RunResult run;
  run.total_cycles = cycles;
  run.link_active_cycles = link_cycles;
  run.total_ops.mac = macs;
  return run;
}

TEST(FpgaPowerModel, OpEnergyIsLinearInCounts) {
  const FpgaPowerModel model;
  sim::OpCounts ops;
  ops.mac = 1000;
  const double one = model.op_energy(ops);
  ops.mac = 2000;
  EXPECT_DOUBLE_EQ(model.op_energy(ops), 2.0 * one);
}

TEST(FpgaPowerModel, OpEnergyWeightsByKind) {
  const FpgaPowerModel model;
  sim::OpCounts divs;
  divs.div = 100;
  sim::OpCounts adds;
  adds.add = 100;
  // A divider op costs more than an add.
  EXPECT_GT(model.op_energy(divs), model.op_energy(adds));
}

TEST(FpgaPowerModel, StaticPowerDominatesIdleRun) {
  const FpgaPowerModel model;
  const auto run = synthetic_run(100'000'000, 0, 0);  // 1 s @ 100 MHz, idle
  const FpgaPowerReport r = model.estimate(run, 100.0e6);
  EXPECT_NEAR(r.seconds, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.dynamic_joules, 0.0);
  EXPECT_NEAR(r.static_joules, model.config().static_watts, 1e-9);
  EXPECT_GT(r.mean_watts, model.config().static_watts);
}

TEST(FpgaPowerModel, PowerRisesWithClock) {
  // The paper's Table I: 14.71 W @25 MHz rising to 20.10 W @100 MHz.
  const FpgaPowerModel model;
  const auto run25 = synthetic_run(25'000'000, 0, 0);   // 1 s @ 25 MHz
  const auto run100 = synthetic_run(100'000'000, 0, 0); // 1 s @ 100 MHz
  const double p25 = model.estimate(run25, 25.0e6).mean_watts;
  const double p100 = model.estimate(run100, 100.0e6).mean_watts;
  EXPECT_LT(p25, p100);
  // Calibration sanity: within ~15% of the published operating points.
  EXPECT_NEAR(p25, 14.71, 2.2);
  EXPECT_NEAR(p100, 20.10, 3.0);
}

TEST(FpgaPowerModel, LinkEnergyChargedOnlyWhenActive) {
  const FpgaPowerModel model;
  const auto idle = synthetic_run(1000, 0, 0);
  const auto busy = synthetic_run(1000, 1000, 0);
  EXPECT_EQ(model.estimate(idle, 1.0e6).link_joules, 0.0);
  EXPECT_GT(model.estimate(busy, 1.0e6).link_joules, 0.0);
}

TEST(FpgaPowerModel, TotalIsSumOfComponents) {
  const FpgaPowerModel model;
  const auto run = synthetic_run(5'000'000, 1'000'000, 123'456);
  const FpgaPowerReport r = model.estimate(run, 50.0e6);
  EXPECT_NEAR(r.total_joules,
              r.dynamic_joules + r.clock_joules + r.static_joules +
                  r.link_joules,
              1e-12);
  EXPECT_NEAR(r.mean_watts * r.seconds, r.total_joules, 1e-9);
}

TEST(FpgaPowerModel, PerModuleSplitsDynamicEnergy) {
  const FpgaPowerModel model;
  accel::RunResult run;
  run.total_cycles = 1000;
  accel::ModuleReport mem;
  mem.name = "MEM";
  mem.stats.busy_cycles = 400;
  mem.stats.ops.mac = 500;
  accel::ModuleReport out;
  out.name = "OUTPUT";
  out.stats.busy_cycles = 100;
  out.stats.ops.mac = 100;
  run.modules = {mem, out};
  run.total_ops = mem.stats.ops;
  run.total_ops += out.stats.ops;

  const auto rows = model.per_module(run);
  ASSERT_EQ(rows.size(), 2U);
  EXPECT_EQ(rows[0].name, "MEM");
  EXPECT_DOUBLE_EQ(rows[0].busy_fraction, 0.4);
  EXPECT_DOUBLE_EQ(rows[1].busy_fraction, 0.1);
  // Split sums to the total dynamic energy.
  EXPECT_NEAR(rows[0].dynamic_joules + rows[1].dynamic_joules,
              model.op_energy(run.total_ops), 1e-18);
  // MEM did 5x the MACs of OUTPUT.
  EXPECT_NEAR(rows[0].dynamic_joules, 5.0 * rows[1].dynamic_joules, 1e-18);
}

TEST(FpgaPowerModel, MoreOpsMoreEnergySameTime) {
  const FpgaPowerModel model;
  const auto light = synthetic_run(1'000'000, 0, 1'000);
  const auto heavy = synthetic_run(1'000'000, 0, 1'000'000'000);
  EXPECT_GT(model.estimate(heavy, 100.0e6).total_joules,
            model.estimate(light, 100.0e6).total_joules);
}

}  // namespace
}  // namespace mann::power
