#include "power/energy.hpp"

#include <gtest/gtest.h>

namespace mann::power {
namespace {

TEST(Energy, JoulesAndFlopsPerKj) {
  EnergyReport r;
  r.seconds = 10.0;
  r.watts = 50.0;  // 500 J = 0.5 kJ
  r.flops = 1'000'000;
  EXPECT_DOUBLE_EQ(r.joules(), 500.0);
  EXPECT_DOUBLE_EQ(r.flop_rate(), 100'000.0);
  // Paper metric: rate / kJ = 1e5 / 0.5.
  EXPECT_DOUBLE_EQ(r.flops_per_kj(), 200'000.0);
}

TEST(Energy, MetricReproducesPaperTableOne) {
  // The published normalized FLOPS/kJ columns follow from the published
  // times and powers under the rate-per-energy reading. Same FLOP count
  // for every configuration (same workload).
  EnergyReport gpu;
  gpu.seconds = 226.90;
  gpu.watts = 45.36;
  gpu.flops = 1'000'000'000;
  EnergyReport cpu;
  cpu.seconds = 242.77;
  cpu.watts = 23.28;
  cpu.flops = gpu.flops;
  EnergyReport fpga100;
  fpga100.seconds = 30.28;
  fpga100.watts = 20.10;
  fpga100.flops = gpu.flops;
  EnergyReport fpga100_ith;
  fpga100_ith.seconds = 28.53;
  fpga100_ith.watts = 20.53;
  fpga100_ith.flops = gpu.flops;

  EXPECT_NEAR(normalize(cpu, gpu).energy_efficiency, 1.70, 0.01);
  EXPECT_NEAR(normalize(fpga100, gpu).energy_efficiency, 126.72, 0.8);
  EXPECT_NEAR(normalize(fpga100_ith, gpu).energy_efficiency, 139.75, 1.0);
  EXPECT_NEAR(normalize(fpga100, gpu).speedup, 7.49, 0.01);
}

TEST(Energy, ZeroEnergyGuard) {
  EnergyReport r;
  r.flops = 100;
  EXPECT_DOUBLE_EQ(r.flops_per_kj(), 0.0);
}

TEST(Energy, NormalizeAgainstBaseline) {
  EnergyReport gpu;
  gpu.seconds = 100.0;
  gpu.watts = 45.0;
  gpu.flops = 1'000'000;

  EnergyReport fpga;
  fpga.seconds = 20.0;   // 5x faster
  fpga.watts = 15.0;     // 3x less power
  fpga.flops = 1'000'000;

  const NormalizedReport n = normalize(fpga, gpu);
  EXPECT_NEAR(n.speedup, 5.0, 1e-9);
  // speedup^2 * power ratio = 25 * 3.
  EXPECT_NEAR(n.energy_efficiency, 75.0, 1e-9);
}

TEST(Energy, BaselineNormalizesToUnity) {
  EnergyReport gpu;
  gpu.seconds = 10.0;
  gpu.watts = 45.0;
  gpu.flops = 500;
  const NormalizedReport n = normalize(gpu, gpu);
  EXPECT_DOUBLE_EQ(n.speedup, 1.0);
  EXPECT_DOUBLE_EQ(n.energy_efficiency, 1.0);
}

TEST(Energy, DegenerateMeasurementGuards) {
  EnergyReport base;
  base.seconds = 1.0;
  base.watts = 1.0;
  base.flops = 1000;
  EnergyReport zero;
  const NormalizedReport n = normalize(zero, base);
  EXPECT_DOUBLE_EQ(n.speedup, 0.0);
  EXPECT_DOUBLE_EQ(n.energy_efficiency, 0.0);
}

}  // namespace
}  // namespace mann::power
