#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace mann::obs {
namespace {

// Structural JSON sanity without a parser: balanced delimiters and no
// trailing commas before a closing bracket/brace. The Python analyzer
// (scripts/trace_summary.py) does the full parse in CI.
void expect_balanced_json(const std::string& json) {
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (in_string) {
      continue;
    }
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(json.find(",]"), std::string::npos);
  EXPECT_EQ(json.find(",}"), std::string::npos);
  EXPECT_EQ(json.find(",\n]"), std::string::npos);
  EXPECT_EQ(json.find(",\n}"), std::string::npos);
}

TEST(ChromeTraceJson, EmptyRecorderIsValid) {
  TraceRecorder recorder;
  const std::string json = chrome_trace_json(recorder, 100.0e6);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"mannClockHz\""), std::string::npos);
}

TEST(ChromeTraceJson, MetricsSnapshotEmbeds) {
  TraceRecorder recorder;
  MetricsRegistry registry;
  add(counter(&registry, "serve.test.counter"), 3);
  const std::string json = chrome_trace_json(recorder, 100.0e6, &registry);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"mannMetrics\""), std::string::npos);
  if constexpr (kEnabled) {
    EXPECT_NE(json.find("\"serve.test.counter\":3"), std::string::npos);
  }
}

#if MANN_OBS

TEST(TraceRecorder, LifecycleSpansRoundTrip) {
  TraceRecorder recorder;
  recorder.begin_async("request", /*id=*/7, /*ts=*/100, /*task=*/2,
                       /*tenant=*/1, /*deadline=*/5'000);
  recorder.begin_async("queued", 7, 100, 2, 1);
  recorder.end_async("queued", 7, 250);
  recorder.instant(Domain::kSim, kTrackFrontend, "shed", 300, "quota", 3);
  recorder.complete(Domain::kSim, kTrackDeviceBase + 1, "batch", 250, 400,
                    "warm", 2, 1, 4);
  recorder.end_async("request", 7, 650);
  EXPECT_EQ(recorder.event_count(), 6U);

  const std::vector<TraceEvent> events = recorder.merged();
  ASSERT_EQ(events.size(), 6U);
  // merged() orders by (domain, track, ts, seq): frontend instant first,
  // then the requests track in record order, then the device slot.
  EXPECT_STREQ(events[0].name, "shed");
  EXPECT_STREQ(events[0].detail, "quota");
  EXPECT_STREQ(events[1].name, "request");
  EXPECT_EQ(events[1].phase, Phase::kAsyncBegin);
  EXPECT_EQ(events[1].id, 7U);
  EXPECT_EQ(events[1].deadline, 5'000);
  EXPECT_STREQ(events[4].name, "request");
  EXPECT_EQ(events[4].phase, Phase::kAsyncEnd);
  EXPECT_STREQ(events[5].name, "batch");
  EXPECT_EQ(events[5].dur, 400U);
  EXPECT_EQ(events[5].batch, 4);
  // Sim-domain events sort before host-domain, and within a track by ts.
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return std::tie(a.domain, a.track, a.ts) <
                                      std::tie(b.domain, b.track, b.ts);
                             }));
}

TEST(TraceRecorder, ConcurrentRecordingLosesNothing) {
  TraceRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.complete(Domain::kHost, kTrackWorkerBase + t, "speculate",
                          recorder.wall_ns(), 10, "hit",
                          /*task=*/t);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const std::vector<TraceEvent> events = recorder.merged();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  // Every event survives with its per-thread track, and seq numbers are
  // unique across buffers.
  std::map<std::uint32_t, int> per_track;
  std::vector<std::uint64_t> seqs;
  seqs.reserve(events.size());
  for (const TraceEvent& e : events) {
    ++per_track[e.track];
    seqs.push_back(e.seq);
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_track[kTrackWorkerBase + t], kPerThread);
  }
  std::sort(seqs.begin(), seqs.end());
  EXPECT_EQ(std::adjacent_find(seqs.begin(), seqs.end()), seqs.end());
}

TEST(ChromeTraceJson, EventsSerializeWithArgs) {
  TraceRecorder recorder;
  recorder.begin_async("request", 1, 500, /*task=*/3, /*tenant=*/2,
                       /*deadline=*/9'000);
  recorder.end_async("request", 1, 1'500);
  recorder.instant(Domain::kSim, kTrackFrontend, "shed", 700, "overload");
  recorder.complete(Domain::kHost, kTrackDispatch, "cache", 100, 0, "miss");
  const std::string json = chrome_trace_json(recorder, 100.0e6);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"overload\""), std::string::npos);
  EXPECT_NE(json.find("\"deadline\":9000"), std::string::npos);
  // 500 cycles at 100 MHz = 5 µs (sim domain, pid 1); the host-domain
  // cache instant lands on pid 2 at ts = 100 ns = 0.1 µs.
  EXPECT_NE(json.find("\"pid\":1,\"tid\":2,\"ts\":5.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"pid\":2,\"tid\":199,\"ts\":0.100"),
            std::string::npos);
  // Track metadata names both processes.
  EXPECT_NE(json.find("\"simulated\""), std::string::npos);
  EXPECT_NE(json.find("\"host\""), std::string::npos);
}

#else  // !MANN_OBS

TEST(TraceRecorder, CompiledOutRecorderIsInert) {
  const TraceRecorder recorder;
  recorder.begin_async("request", 1, 10);
  recorder.end_async("request", 1, 20);
  recorder.instant(Domain::kSim, kTrackFrontend, "shed", 15);
  recorder.complete(Domain::kHost, kTrackDispatch, "cache", 1, 2);
  EXPECT_EQ(recorder.event_count(), 0U);
  EXPECT_TRUE(recorder.merged().empty());
  EXPECT_EQ(recorder.wall_ns(), 0U);
}

#endif  // MANN_OBS

}  // namespace
}  // namespace mann::obs
