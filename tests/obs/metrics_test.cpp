#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <type_traits>
#include <vector>

namespace mann::obs {
namespace {

// The compile-time contract: with MANN_OBS=1 instruments are real atomic
// state; with MANN_OBS=0 they are empty structs and every record call is
// an inline no-op, so the serving hot path carries zero overhead.
#if MANN_OBS
static_assert(kEnabled);
#else
static_assert(!kEnabled);
static_assert(std::is_empty_v<Counter>);
static_assert(std::is_empty_v<Gauge>);
static_assert(std::is_empty_v<Histogram>);
#endif

TEST(NullSafeHelpers, NullPointersAreNoOps) {
  // Components record through these with nullptr when no registry is
  // configured; none of this may crash in either compile mode.
  add(static_cast<Counter*>(nullptr));
  add(static_cast<Counter*>(nullptr), 7);
  set(static_cast<Gauge*>(nullptr), -3);
  observe(static_cast<Histogram*>(nullptr), 42);
  EXPECT_EQ(counter(nullptr, "x"), nullptr);
  EXPECT_EQ(gauge(nullptr, "x"), nullptr);
  EXPECT_EQ(histogram(nullptr, "x"), nullptr);
}

TEST(NullSafeHelpers, RegistryLookupRecords) {
  MetricsRegistry registry;
  Counter* c = counter(&registry, "test.counter");
  ASSERT_NE(c, nullptr);
  add(c);
  add(c, 4);
  Gauge* g = gauge(&registry, "test.gauge");
  ASSERT_NE(g, nullptr);
  set(g, 17);
  Histogram* h = histogram(&registry, "test.histogram");
  ASSERT_NE(h, nullptr);
  observe(h, 100);
  if constexpr (kEnabled) {
    EXPECT_EQ(c->value(), 5U);
    EXPECT_EQ(g->value(), 17);
    EXPECT_EQ(h->snapshot().count, 1U);
  } else {
    EXPECT_EQ(c->value(), 0U);
    EXPECT_EQ(g->value(), 0);
    EXPECT_EQ(h->snapshot().count, 0U);
  }
}

#if MANN_OBS

TEST(Counter, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0U);
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10U);
}

TEST(Gauge, LastWriterWins) {
  Gauge g;
  g.set(5);
  g.set(-2);
  EXPECT_EQ(g.value(), -2);
}

TEST(Histogram, BucketsByBitWidth) {
  Histogram h;
  h.observe(0);   // bucket 0
  h.observe(1);   // bucket 1
  h.observe(7);   // bucket 3: [4, 8)
  h.observe(8);   // bucket 4: [8, 16)
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4U);
  EXPECT_EQ(s.sum, 16U);
  EXPECT_EQ(s.min, 0U);
  EXPECT_EQ(s.max, 8U);
  EXPECT_EQ(s.buckets[0], 1U);
  EXPECT_EQ(s.buckets[1], 1U);
  EXPECT_EQ(s.buckets[3], 1U);
  EXPECT_EQ(s.buckets[4], 1U);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  // Quantiles report bucket upper bounds: the p99 observation (8) lives
  // in [8, 16), whose upper bound is 16.
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 16.0);
}

TEST(Histogram, EmptySnapshotIsZero) {
  Histogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0U);
  EXPECT_EQ(s.min, 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter& a = registry.counter("serve.test");
  Counter& b = registry.counter("serve.test");
  EXPECT_EQ(&a, &b);
  // Same name, different kind: distinct instruments.
  Gauge& g = registry.gauge("serve.test");
  g.set(1);
  a.add();
  EXPECT_EQ(a.value(), 1U);
  EXPECT_EQ(g.value(), 1);
}

TEST(MetricsRegistry, SnapshotIsNameSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("b.second").add(2);
  registry.counter("a.first").add(1);
  registry.gauge("c.gauge").set(-4);
  registry.histogram("d.hist").observe(3);
  const std::vector<MetricSample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 4U);
  EXPECT_EQ(samples[0].name, "a.first");
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(samples[0].value, 1U);
  EXPECT_EQ(samples[1].name, "b.second");
  EXPECT_EQ(samples[1].value, 2U);
  EXPECT_EQ(samples[2].name, "c.gauge");
  EXPECT_EQ(samples[2].gauge, -4);
  EXPECT_EQ(samples[3].name, "d.hist");
  EXPECT_EQ(samples[3].histogram.count, 1U);
}

TEST(MetricsRegistry, ConcurrentRecordingIsExact) {
  MetricsRegistry registry;
  Counter& c = registry.counter("concurrent.counter");
  Histogram& h = registry.histogram("concurrent.hist");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.min, 0U);
  EXPECT_EQ(s.max, static_cast<std::uint64_t>(kPerThread - 1));
}

#else  // !MANN_OBS

TEST(MetricsRegistry, CompiledOutEverythingFoldsAway) {
  MetricsRegistry registry;
  Counter& c = registry.counter("anything");
  c.add(100);
  EXPECT_EQ(c.value(), 0U);
  registry.gauge("anything").set(5);
  registry.histogram("anything").observe(5);
  EXPECT_TRUE(registry.snapshot().empty());
}

#endif  // MANN_OBS

}  // namespace
}  // namespace mann::obs
