// Shared fixtures for the serving-layer tests: a tiny untrained model
// (prediction quality is irrelevant to queueing/scheduling behaviour —
// only the cycle costs matter, and those depend on shapes, not weights)
// and a small synthetic story corpus.
#pragma once

#include <cstddef>
#include <vector>

#include "accel/compiler.hpp"
#include "data/types.hpp"
#include "model/memn2n.hpp"
#include "numeric/random.hpp"
#include "serve/request.hpp"

namespace mann::serve::testing {

inline model::ModelConfig tiny_model_config() {
  model::ModelConfig config;
  config.vocab_size = 12;
  config.embedding_dim = 8;
  config.hops = 2;
  config.max_memory = 8;
  return config;
}

inline accel::DeviceProgram tiny_program(std::uint64_t seed = 7) {
  numeric::Rng rng(seed);
  const model::MemN2N net(tiny_model_config(), rng);
  return accel::compile_model(net);
}

/// `count` two-sentence stories with in-vocab word indices.
inline std::vector<data::EncodedStory> tiny_stories(std::size_t count) {
  std::vector<data::EncodedStory> stories;
  stories.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    data::EncodedStory story;
    const auto w = [&](std::size_t k) {
      return static_cast<std::int32_t>((i + k) % 12);
    };
    story.context = {{w(0), w(1)}, {w(2), w(3)}};
    story.question = {w(4)};
    story.answer = w(5);
    stories.push_back(story);
  }
  return stories;
}

inline InferenceRequest make_request(RequestId id, std::size_t task,
                                     const data::EncodedStory& story,
                                     sim::Cycle enqueue) {
  InferenceRequest request;
  request.id = id;
  request.task = task;
  request.story = &story;
  request.enqueue_cycle = enqueue;
  return request;
}

}  // namespace mann::serve::testing
