#include "serve/eviction.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace mann::serve {
namespace {

EvictionCandidate candidate(std::size_t slot, std::size_t task,
                            sim::Cycle last_dispatch,
                            std::uint64_t dispatches,
                            sim::Cycle reload) {
  EvictionCandidate c;
  c.slot = slot;
  c.resident_task = task;
  c.last_dispatch_cycle = last_dispatch;
  c.resident_task_dispatches = dispatches;
  c.reload_cycles = reload;
  return c;
}

TEST(EvictionPolicy, FactoryMatchesKinds) {
  EXPECT_STREQ(make_eviction_policy(EvictionPolicyKind::kLru)->name(), "lru");
  EXPECT_STREQ(make_eviction_policy(EvictionPolicyKind::kLfu)->name(), "lfu");
  EXPECT_STREQ(make_eviction_policy(EvictionPolicyKind::kCostAware)->name(),
               "cost");
  EXPECT_STREQ(eviction_policy_name(EvictionPolicyKind::kLru), "lru");
  EXPECT_STREQ(eviction_policy_name(EvictionPolicyKind::kLfu), "lfu");
  EXPECT_STREQ(eviction_policy_name(EvictionPolicyKind::kCostAware), "cost");
}

TEST(EvictionPolicy, RejectsEmptyCandidateList) {
  const LruEviction lru;
  EXPECT_THROW((void)lru.pick_victim({}), std::invalid_argument);
}

TEST(EvictionPolicy, LruEvictsLeastRecentlyDispatched) {
  const LruEviction lru;
  const std::vector<EvictionCandidate> candidates = {
      candidate(0, 4, /*last_dispatch=*/900, 10, 100),
      candidate(1, 5, /*last_dispatch=*/100, 50, 900),
      candidate(2, 6, /*last_dispatch=*/500, 1, 10),
  };
  EXPECT_EQ(lru.pick_victim(candidates), 1U);
}

TEST(EvictionPolicy, LruTieFallsToLowestSlot) {
  const LruEviction lru;
  const std::vector<EvictionCandidate> candidates = {
      candidate(3, 4, 100, 1, 1),
      candidate(7, 5, 100, 1, 1),
  };
  EXPECT_EQ(lru.pick_victim(candidates), 0U);
}

TEST(EvictionPolicy, LfuEvictsLeastFrequentResident) {
  const LfuEviction lfu;
  const std::vector<EvictionCandidate> candidates = {
      candidate(0, 4, 100, /*dispatches=*/40, 100),
      candidate(1, 5, 900, /*dispatches=*/2, 900),
      candidate(2, 6, 500, /*dispatches=*/7, 10),
  };
  EXPECT_EQ(lfu.pick_victim(candidates), 1U);
}

TEST(EvictionPolicy, LfuTieFallsToLru) {
  const LfuEviction lfu;
  const std::vector<EvictionCandidate> candidates = {
      candidate(0, 4, /*last_dispatch=*/900, 3, 100),
      candidate(1, 5, /*last_dispatch=*/100, 3, 900),
  };
  EXPECT_EQ(lfu.pick_victim(candidates), 1U);
}

TEST(EvictionPolicy, CostAwareEvictsCheapestReload) {
  const CostAwareEviction cost;
  const std::vector<EvictionCandidate> candidates = {
      candidate(0, 4, 100, 1, /*reload=*/5'000),
      candidate(1, 5, 900, 9, /*reload=*/200),
      candidate(2, 6, 500, 5, /*reload=*/90'000),
  };
  EXPECT_EQ(cost.pick_victim(candidates), 1U);
}

TEST(EvictionPolicy, CostAwareTieFallsToLru) {
  const CostAwareEviction cost;
  const std::vector<EvictionCandidate> candidates = {
      candidate(0, 4, /*last_dispatch=*/900, 1, 200),
      candidate(1, 5, /*last_dispatch=*/100, 9, 200),
  };
  EXPECT_EQ(cost.pick_victim(candidates), 1U);
}

}  // namespace
}  // namespace mann::serve
