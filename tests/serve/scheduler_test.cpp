#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "accel/accelerator.hpp"
#include "serve_test_util.hpp"

namespace mann::serve {
namespace {

using testing::make_request;
using testing::tiny_program;
using testing::tiny_stories;

std::vector<accel::Accelerator> task_devices(std::size_t tasks) {
  accel::AccelConfig config;
  std::vector<accel::Accelerator> devices;
  devices.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    devices.emplace_back(config, tiny_program(7 + t));
  }
  return devices;
}

Batch make_batch(std::size_t task,
                 const std::vector<data::EncodedStory>& stories,
                 std::size_t count, sim::Cycle enqueue,
                 RequestId first_id = 0) {
  Batch batch;
  batch.task = task;
  for (std::size_t i = 0; i < count; ++i) {
    batch.requests.push_back(
        make_request(first_id + i, task, stories[i], enqueue));
    batch.stories.push_back(stories[i]);
  }
  return batch;
}

TEST(Scheduler, RejectsBadConstruction) {
  EXPECT_THROW(Scheduler({.devices = 0}, task_devices(1)),
               std::invalid_argument);
  EXPECT_THROW(Scheduler({.devices = 1}, {}), std::invalid_argument);
}

TEST(Scheduler, RunsOneBatchToCompletion) {
  const auto stories = tiny_stories(4);
  Scheduler scheduler({.devices = 1}, task_devices(1));
  ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 4, 100)));
  EXPECT_EQ(scheduler.pending_batches(), 1U);

  scheduler.step(200);
  EXPECT_EQ(scheduler.pending_batches(), 0U);
  EXPECT_EQ(scheduler.in_flight(), 4U);
  EXPECT_FALSE(scheduler.idle());

  // Nothing completes before the first answer reaches the host.
  const sim::Cycle completion = scheduler.next_completion();
  ASSERT_NE(completion, sim::kNever);
  ASSERT_GT(completion, 200U);
  EXPECT_TRUE(scheduler.collect(completion - 1).empty());

  // The device frees at busy_cycles, but the last answer is still riding
  // the host readback latency then — collect at the horizon gets all.
  auto done = scheduler.collect(sim::kNever - 1);
  EXPECT_EQ(done.size(), 4U);
  EXPECT_TRUE(scheduler.idle());
  for (const InferenceResponse& response : done) {
    EXPECT_EQ(response.device, 0U);
    EXPECT_EQ(response.batch_size, 4U);
    EXPECT_EQ(response.enqueue_cycle, 100U);
    EXPECT_EQ(response.dispatch_cycle, 200U);
    EXPECT_GT(response.complete_cycle, response.dispatch_cycle);
  }
}

TEST(Scheduler, DeterministicGivenSameInputs) {
  const auto stories = tiny_stories(6);
  auto run_once = [&] {
    Scheduler scheduler({.devices = 2}, task_devices(2));
    EXPECT_TRUE(scheduler.submit(make_batch(0, stories, 3, 0, 0)));
    EXPECT_TRUE(scheduler.submit(make_batch(1, stories, 3, 0, 3)));
    scheduler.step(0);
    std::vector<InferenceResponse> all = scheduler.collect(sim::kNever - 1);
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) { return a.id < b.id; });
    return all;
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), 6U);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].device, second[i].device);
    EXPECT_EQ(first[i].complete_cycle, second[i].complete_cycle);
    EXPECT_EQ(first[i].prediction, second[i].prediction);
  }
}

TEST(Scheduler, WarmDeviceSkipsModelUpload) {
  const auto stories = tiny_stories(2);
  Scheduler scheduler({.devices = 1}, task_devices(1));

  ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 2, 0, 0)));
  scheduler.step(0);
  const sim::Cycle cold_cycles = scheduler.device_reports()[0].busy_cycles;
  (void)scheduler.collect(sim::kNever - 1);

  ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 2, 0, 2)));
  scheduler.step(cold_cycles);
  const sim::Cycle warm_cycles =
      scheduler.device_reports()[0].busy_cycles - cold_cycles;

  // Same stories, same program: the warm run must be strictly cheaper
  // (no model words on the wire) and must not re-count an upload.
  EXPECT_LT(warm_cycles, cold_cycles);
  EXPECT_EQ(scheduler.device_reports()[0].model_uploads, 1U);
  EXPECT_EQ(scheduler.total_model_uploads(), 1U);
}

TEST(Scheduler, OverflowPoolAbsorbsBurst) {
  const auto stories = tiny_stories(8);
  // 1 dedicated + 2 overflow devices, single task.
  Scheduler scheduler({.devices = 3, .dedicated_devices = 1},
                      task_devices(1));
  for (std::size_t b = 0; b < 3; ++b) {
    ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 2, 0, b * 2)));
  }
  scheduler.step(0);
  // All three batches run concurrently: home + both overflow slots.
  EXPECT_EQ(scheduler.pending_batches(), 0U);
  const auto reports = scheduler.device_reports();
  EXPECT_EQ(reports[0].batches, 1U);
  EXPECT_EQ(reports[1].batches, 1U);
  EXPECT_EQ(reports[2].batches, 1U);
}

TEST(Scheduler, NoRequestDroppedUnderBurstLoad) {
  const auto stories = tiny_stories(4);
  Scheduler scheduler({.devices = 2, .queue_capacity = 64},
                      task_devices(1));
  // 32 batches of 4 slam in at cycle 0 — far beyond pool capacity.
  const std::size_t batches = 32;
  for (std::size_t b = 0; b < batches; ++b) {
    ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 4, 0, b * 4)));
  }

  // Pump the pool until everything drains, stepping at completions.
  std::vector<InferenceResponse> all;
  sim::Cycle now = 0;
  for (int guard = 0; guard < 10'000 && !scheduler.idle(); ++guard) {
    scheduler.step(now);
    const sim::Cycle next = scheduler.next_completion();
    ASSERT_NE(next, sim::kNever);
    now = next;
    for (auto& r : scheduler.collect(now)) {
      all.push_back(r);
    }
  }

  // Every request answered exactly once.
  ASSERT_EQ(all.size(), batches * 4);
  std::vector<RequestId> ids;
  ids.reserve(all.size());
  for (const auto& r : all) {
    ids.push_back(r.id);
  }
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], i);
  }
  // Both devices pulled weight.
  const auto reports = scheduler.device_reports();
  EXPECT_GT(reports[0].batches, 0U);
  EXPECT_GT(reports[1].batches, 0U);
  EXPECT_EQ(reports[0].batches + reports[1].batches, batches);
}

TEST(Scheduler, BoundedQueueRejectsOverflow) {
  const auto stories = tiny_stories(1);
  Scheduler scheduler({.devices = 1, .queue_capacity = 2},
                      task_devices(1));
  EXPECT_TRUE(scheduler.submit(make_batch(0, stories, 1, 0, 0)));
  // Device free: first submit would dispatch on step, but without a step
  // the queue holds it. Fill to the bound.
  EXPECT_TRUE(scheduler.submit(make_batch(0, stories, 1, 0, 1)));
  EXPECT_FALSE(scheduler.has_capacity());
  EXPECT_FALSE(scheduler.submit(make_batch(0, stories, 1, 0, 2)));
  EXPECT_EQ(scheduler.queue_stats().full_rejects, 1U);
}

TEST(Scheduler, RejectsMalformedBatches) {
  const auto stories = tiny_stories(1);
  Scheduler scheduler({.devices = 1}, task_devices(1));
  EXPECT_THROW((void)scheduler.submit(make_batch(9, stories, 1, 0)),
               std::out_of_range);
  Batch empty_batch;
  empty_batch.task = 0;
  EXPECT_THROW((void)scheduler.submit(std::move(empty_batch)),
               std::invalid_argument);
}

}  // namespace
}  // namespace mann::serve
