#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "accel/accelerator.hpp"
#include "serve_test_util.hpp"

namespace mann::serve {
namespace {

using testing::make_request;
using testing::tiny_program;
using testing::tiny_stories;

std::vector<accel::Accelerator> task_devices(std::size_t tasks) {
  accel::AccelConfig config;
  std::vector<accel::Accelerator> devices;
  devices.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    devices.emplace_back(config, tiny_program(7 + t));
  }
  return devices;
}

Batch make_batch(std::size_t task,
                 const std::vector<data::EncodedStory>& stories,
                 std::size_t count, sim::Cycle enqueue,
                 RequestId first_id = 0) {
  Batch batch;
  batch.task = task;
  for (std::size_t i = 0; i < count; ++i) {
    batch.requests.push_back(
        make_request(first_id + i, task, stories[i], enqueue));
    batch.stories.push_back(stories[i]);
  }
  return batch;
}

TEST(Scheduler, RejectsBadConstruction) {
  EXPECT_THROW(Scheduler({.devices = 0}, task_devices(1)),
               std::invalid_argument);
  EXPECT_THROW(Scheduler({.devices = 1}, {}), std::invalid_argument);
}

TEST(Scheduler, RunsOneBatchToCompletion) {
  const auto stories = tiny_stories(4);
  Scheduler scheduler({.devices = 1}, task_devices(1));
  ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 4, 100)));
  EXPECT_EQ(scheduler.pending_batches(), 1U);

  scheduler.step(200);
  EXPECT_EQ(scheduler.pending_batches(), 0U);
  EXPECT_EQ(scheduler.in_flight(), 4U);
  EXPECT_FALSE(scheduler.idle());

  // Nothing completes before the first answer reaches the host.
  const sim::Cycle completion = scheduler.next_completion();
  ASSERT_NE(completion, sim::kNever);
  ASSERT_GT(completion, 200U);
  EXPECT_TRUE(scheduler.collect(completion - 1).empty());

  // The device frees at busy_cycles, but the last answer is still riding
  // the host readback latency then — collect at the horizon gets all.
  auto done = scheduler.collect(sim::kNever - 1);
  EXPECT_EQ(done.size(), 4U);
  EXPECT_TRUE(scheduler.idle());
  for (const InferenceResponse& response : done) {
    EXPECT_EQ(response.device, 0U);
    EXPECT_EQ(response.batch_size, 4U);
    EXPECT_EQ(response.enqueue_cycle, 100U);
    EXPECT_EQ(response.dispatch_cycle, 200U);
    EXPECT_GT(response.complete_cycle, response.dispatch_cycle);
  }
}

TEST(Scheduler, DeterministicGivenSameInputs) {
  const auto stories = tiny_stories(6);
  auto run_once = [&] {
    Scheduler scheduler({.devices = 2}, task_devices(2));
    EXPECT_TRUE(scheduler.submit(make_batch(0, stories, 3, 0, 0)));
    EXPECT_TRUE(scheduler.submit(make_batch(1, stories, 3, 0, 3)));
    scheduler.step(0);
    std::vector<InferenceResponse> all = scheduler.collect(sim::kNever - 1);
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) { return a.id < b.id; });
    return all;
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), 6U);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].device, second[i].device);
    EXPECT_EQ(first[i].complete_cycle, second[i].complete_cycle);
    EXPECT_EQ(first[i].prediction, second[i].prediction);
  }
}

TEST(Scheduler, WarmDeviceSkipsModelUpload) {
  const auto stories = tiny_stories(2);
  Scheduler scheduler({.devices = 1}, task_devices(1));

  ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 2, 0, 0)));
  scheduler.step(0);
  const sim::Cycle cold_cycles = scheduler.device_reports()[0].busy_cycles;
  (void)scheduler.collect(sim::kNever - 1);

  ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 2, 0, 2)));
  scheduler.step(cold_cycles);
  const sim::Cycle warm_cycles =
      scheduler.device_reports()[0].busy_cycles - cold_cycles;

  // Same stories, same program: the warm run must be strictly cheaper
  // (no model words on the wire) and must not re-count an upload.
  EXPECT_LT(warm_cycles, cold_cycles);
  EXPECT_EQ(scheduler.device_reports()[0].model_uploads, 1U);
  EXPECT_EQ(scheduler.total_model_uploads(), 1U);
}

TEST(Scheduler, OverflowPoolAbsorbsBurst) {
  const auto stories = tiny_stories(8);
  // 1 dedicated + 2 overflow devices, single task.
  Scheduler scheduler({.devices = 3, .dedicated_devices = 1},
                      task_devices(1));
  for (std::size_t b = 0; b < 3; ++b) {
    ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 2, 0, b * 2)));
  }
  scheduler.step(0);
  // All three batches run concurrently: home + both overflow slots.
  EXPECT_EQ(scheduler.pending_batches(), 0U);
  const auto reports = scheduler.device_reports();
  EXPECT_EQ(reports[0].batches, 1U);
  EXPECT_EQ(reports[1].batches, 1U);
  EXPECT_EQ(reports[2].batches, 1U);
}

TEST(Scheduler, NoRequestDroppedUnderBurstLoad) {
  const auto stories = tiny_stories(4);
  Scheduler scheduler({.devices = 2, .queue_capacity = 64},
                      task_devices(1));
  // 32 batches of 4 slam in at cycle 0 — far beyond pool capacity.
  const std::size_t batches = 32;
  for (std::size_t b = 0; b < batches; ++b) {
    ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 4, 0, b * 4)));
  }

  // Pump the pool until everything drains, stepping at completions.
  std::vector<InferenceResponse> all;
  sim::Cycle now = 0;
  for (int guard = 0; guard < 10'000 && !scheduler.idle(); ++guard) {
    scheduler.step(now);
    const sim::Cycle next = scheduler.next_completion();
    ASSERT_NE(next, sim::kNever);
    now = next;
    for (auto& r : scheduler.collect(now)) {
      all.push_back(r);
    }
  }

  // Every request answered exactly once.
  ASSERT_EQ(all.size(), batches * 4);
  std::vector<RequestId> ids;
  ids.reserve(all.size());
  for (const auto& r : all) {
    ids.push_back(r.id);
  }
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], i);
  }
  // Both devices pulled weight.
  const auto reports = scheduler.device_reports();
  EXPECT_GT(reports[0].batches, 0U);
  EXPECT_GT(reports[1].batches, 0U);
  EXPECT_EQ(reports[0].batches + reports[1].batches, batches);
}

TEST(Scheduler, BoundedQueueRejectsOverflow) {
  const auto stories = tiny_stories(1);
  Scheduler scheduler({.devices = 1, .queue_capacity = 2},
                      task_devices(1));
  EXPECT_TRUE(scheduler.submit(make_batch(0, stories, 1, 0, 0)));
  // Device free: first submit would dispatch on step, but without a step
  // the queue holds it. Fill to the bound.
  EXPECT_TRUE(scheduler.submit(make_batch(0, stories, 1, 0, 1)));
  EXPECT_FALSE(scheduler.has_capacity());
  EXPECT_FALSE(scheduler.submit(make_batch(0, stories, 1, 0, 2)));
  EXPECT_EQ(scheduler.queue_stats().full_rejects, 1U);
}

Batch deadline_batch(std::size_t task,
                     const std::vector<data::EncodedStory>& stories,
                     std::size_t count, sim::Cycle enqueue,
                     sim::Cycle deadline, RequestId first_id) {
  Batch batch = make_batch(task, stories, count, enqueue, first_id);
  batch.deadline = deadline;
  for (InferenceRequest& request : batch.requests) {
    request.deadline_cycle = deadline;
  }
  return batch;
}

/// Pumps the scheduler until idle, returning responses in completion
/// order (dispatch order is recoverable from dispatch_cycle).
std::vector<InferenceResponse> drain(Scheduler& scheduler) {
  std::vector<InferenceResponse> all;
  sim::Cycle now = 0;
  for (int guard = 0; guard < 100'000 && !scheduler.idle(); ++guard) {
    scheduler.step(now);
    const sim::Cycle next = scheduler.next_completion();
    if (next == sim::kNever) {
      break;
    }
    now = next;
    for (auto& r : scheduler.collect(now)) {
      all.push_back(r);
    }
  }
  return all;
}

sim::Cycle dispatch_cycle_of(const std::vector<InferenceResponse>& all,
                             RequestId id) {
  for (const InferenceResponse& r : all) {
    if (r.id == id) {
      return r.dispatch_cycle;
    }
  }
  ADD_FAILURE() << "response " << id << " missing";
  return sim::kNever;
}

TEST(Scheduler, EdfDispatchesMostUrgentFirstUnderContention) {
  const auto stories = tiny_stories(2);
  // One device: all three batches contend for the same slot. Submission
  // order is the *reverse* of urgency.
  Scheduler scheduler({.devices = 1, .policy = SchedulerPolicy::kEdf},
                      task_devices(1));
  ASSERT_TRUE(
      scheduler.submit(deadline_batch(0, stories, 1, 0, 30'000'000, 0)));
  ASSERT_TRUE(
      scheduler.submit(deadline_batch(0, stories, 1, 0, 10'000'000, 1)));
  ASSERT_TRUE(
      scheduler.submit(deadline_batch(0, stories, 1, 0, 20'000'000, 2)));

  const auto all = drain(scheduler);
  ASSERT_EQ(all.size(), 3U);
  // Deadline order 1 < 2 < 0, not submit order.
  EXPECT_LT(dispatch_cycle_of(all, 1), dispatch_cycle_of(all, 2));
  EXPECT_LT(dispatch_cycle_of(all, 2), dispatch_cycle_of(all, 0));
  // Responses carry their deadline through to the metrics layer.
  for (const InferenceResponse& r : all) {
    EXPECT_NE(r.deadline_cycle, sim::kNever);
  }
}

TEST(Scheduler, FifoPolicyKeepsSubmitOrderDespiteDeadlines) {
  const auto stories = tiny_stories(2);
  Scheduler scheduler({.devices = 1, .policy = SchedulerPolicy::kFifo},
                      task_devices(1));
  ASSERT_TRUE(
      scheduler.submit(deadline_batch(0, stories, 1, 0, 30'000'000, 0)));
  ASSERT_TRUE(
      scheduler.submit(deadline_batch(0, stories, 1, 0, 10'000'000, 1)));

  const auto all = drain(scheduler);
  ASSERT_EQ(all.size(), 2U);
  EXPECT_LT(dispatch_cycle_of(all, 0), dispatch_cycle_of(all, 1));
}

TEST(Scheduler, EdfWithoutDeadlinesDegradesToSubmitOrder) {
  const auto stories = tiny_stories(2);
  Scheduler scheduler({.devices = 1, .policy = SchedulerPolicy::kEdf},
                      task_devices(1));
  ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 1, 0, 0)));
  ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 1, 0, 1)));
  const auto all = drain(scheduler);
  ASSERT_EQ(all.size(), 2U);
  EXPECT_LT(dispatch_cycle_of(all, 0), dispatch_cycle_of(all, 1));
}

TEST(Scheduler, WorkStealingDrainsOverloadedShard) {
  const auto stories = tiny_stories(4);
  // Fully sharded pool, one task: every batch homes on slot 0. Slot 1's
  // shard queue is empty, so it must steal — the tight deadlines make
  // waiting for slot 0 a guaranteed SLO miss, which satisfies the
  // steal-worthwhile gate.
  Scheduler scheduler({.devices = 2,
                       .dedicated_devices = 2,
                       .policy = SchedulerPolicy::kEdf,
                       .work_stealing = true},
                      task_devices(1));
  ASSERT_TRUE(scheduler.submit(deadline_batch(0, stories, 2, 0, 1'000, 0)));
  ASSERT_TRUE(scheduler.submit(deadline_batch(0, stories, 2, 0, 2'000, 2)));
  scheduler.step(0);
  EXPECT_EQ(scheduler.pending_batches(), 0U);
  const auto reports = scheduler.device_reports();
  EXPECT_EQ(reports[0].batches, 1U);
  EXPECT_EQ(reports[1].batches, 1U);
  EXPECT_EQ(reports[0].stolen_batches, 0U);
  EXPECT_EQ(reports[1].stolen_batches, 1U);
  EXPECT_EQ(scheduler.total_stolen_batches(), 1U);
}

TEST(Scheduler, StealingOffLeavesForeignShardsIdle) {
  const auto stories = tiny_stories(4);
  Scheduler scheduler({.devices = 2,
                       .dedicated_devices = 2,
                       .policy = SchedulerPolicy::kEdf,
                       .work_stealing = false},
                      task_devices(1));
  ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 2, 0, 0)));
  ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 2, 0, 2)));
  scheduler.step(0);
  // Without stealing the second batch waits for slot 0 to free.
  EXPECT_EQ(scheduler.pending_batches(), 1U);
  EXPECT_EQ(scheduler.device_reports()[1].batches, 0U);
}

TEST(Scheduler, StealingNeverLosesOrDuplicatesBatches) {
  const auto stories = tiny_stories(4);
  // 4 fully sharded slots, 2 tasks (homes 0 and 1; slots 2 and 3 can
  // only ever steal), EDF with interleaved deadlines.
  Scheduler scheduler({.devices = 4,
                       .dedicated_devices = 4,
                       .queue_capacity = 128,
                       .policy = SchedulerPolicy::kEdf,
                       .work_stealing = true},
                      task_devices(2));
  const std::size_t batches = 24;
  for (std::size_t b = 0; b < batches; ++b) {
    // Deadlines tight enough that waiting for a busy home shard is a
    // certain miss (keeps the steal-worthwhile gate open) but spread so
    // EDF genuinely reorders.
    const sim::Cycle deadline = 2'000 * ((b % 5) + 1);
    ASSERT_TRUE(scheduler.submit(
        deadline_batch(b % 2, stories, 4, 0, deadline, b * 4)));
  }

  const auto all = drain(scheduler);
  ASSERT_EQ(all.size(), batches * 4);
  std::vector<RequestId> ids;
  ids.reserve(all.size());
  for (const auto& r : all) {
    ids.push_back(r.id);
  }
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], i);  // every request answered exactly once
  }
  const auto reports = scheduler.device_reports();
  std::uint64_t total = 0;
  for (const auto& d : reports) {
    total += d.batches;
  }
  EXPECT_EQ(total, batches);
  // The steal-only slots pulled real weight.
  EXPECT_GT(reports[2].batches + reports[3].batches, 0U);
  EXPECT_GT(scheduler.total_stolen_batches(), 0U);
}

TEST(Scheduler, LruEvictionDisplacesColdestResident) {
  const auto stories = tiny_stories(2);
  // Shared two-slot pool, three tasks: warm up task 0 on slot 0 and
  // task 1 on slot 1, re-touch task 0, then force task 2 to evict.
  Scheduler scheduler({.devices = 2,
                       .policy = SchedulerPolicy::kEdf,
                       .eviction = EvictionPolicyKind::kLru},
                      task_devices(3));
  ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 1, 0, 0)));
  scheduler.step(0);
  (void)scheduler.collect(sim::kNever - 1);
  const sim::Cycle t1 = scheduler.next_slot_free(0) == sim::kNever
                            ? 1
                            : scheduler.next_slot_free(0);
  ASSERT_TRUE(scheduler.submit(make_batch(1, stories, 1, t1, 1)));
  scheduler.step(t1);
  (void)scheduler.collect(sim::kNever - 1);
  const sim::Cycle t2 = t1 + 1'000'000;
  ASSERT_TRUE(scheduler.submit(make_batch(0, stories, 1, t2, 2)));
  scheduler.step(t2);  // re-touches task 0 on its warm slot 0
  (void)scheduler.collect(sim::kNever - 1);

  const sim::Cycle t3 = t2 + 1'000'000;
  ASSERT_TRUE(scheduler.submit(make_batch(2, stories, 1, t3, 3)));
  scheduler.step(t3);
  (void)scheduler.collect(sim::kNever - 1);

  // Slot 1 (task 1, least recently dispatched) was the victim; slot 0
  // keeps the hot task 0 resident.
  const auto reports = scheduler.device_reports();
  EXPECT_EQ(reports[0].resident_task, 0U);
  EXPECT_EQ(reports[1].resident_task, 2U);
  EXPECT_EQ(reports[0].model_evictions, 0U);
  EXPECT_EQ(reports[1].model_evictions, 1U);
  EXPECT_EQ(scheduler.total_model_evictions(), 1U);
}

TEST(Scheduler, DeterministicAcrossPoliciesForPredictions) {
  const auto stories = tiny_stories(6);
  const auto predictions_under = [&](SchedulerPolicy policy) {
    Scheduler scheduler({.devices = 2, .policy = policy}, task_devices(2));
    EXPECT_TRUE(
        scheduler.submit(deadline_batch(0, stories, 3, 0, 9'000'000, 0)));
    EXPECT_TRUE(
        scheduler.submit(deadline_batch(1, stories, 3, 0, 1'000'000, 3)));
    auto all = drain(scheduler);
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) { return a.id < b.id; });
    std::vector<std::int32_t> out;
    for (const auto& r : all) {
      out.push_back(r.prediction);
    }
    return out;
  };
  // Scheduling policy reorders work but must never change answers.
  EXPECT_EQ(predictions_under(SchedulerPolicy::kFifo),
            predictions_under(SchedulerPolicy::kEdf));
}

TEST(Scheduler, RejectsMalformedBatches) {
  const auto stories = tiny_stories(1);
  Scheduler scheduler({.devices = 1}, task_devices(1));
  EXPECT_THROW((void)scheduler.submit(make_batch(9, stories, 1, 0)),
               std::out_of_range);
  Batch empty_batch;
  empty_batch.task = 0;
  EXPECT_THROW((void)scheduler.submit(std::move(empty_batch)),
               std::invalid_argument);
}

}  // namespace
}  // namespace mann::serve
