// The admission controller: token-bucket quotas, tiered overload
// shedding, doom shedding against the cost-model outlook, and the
// unified ShedReason accounting.
#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <vector>

#include "serve_test_util.hpp"

namespace mann::serve {
namespace {

using testing::make_request;
using testing::tiny_stories;

InferenceRequest tenant_request(TenantId tenant, sim::Cycle enqueue,
                                const data::EncodedStory& story,
                                sim::Cycle deadline = sim::kNever) {
  InferenceRequest request = make_request(0, 0, story, enqueue);
  request.tenant = tenant;
  request.deadline_cycle = deadline;
  return request;
}

TEST(Admission, TransparentByDefault) {
  // Empty registry + default config: everything is admitted, forever.
  AdmissionController admission(AdmissionConfig{}, {});
  const auto stories = tiny_stories(1);
  AdmissionOutlook outlook;
  outlook.pending_requests = 1'000'000;  // even absurd backlog
  outlook.service_estimate = 1'000'000;
  outlook.backlog_cycles_per_device = 1'000'000;
  for (sim::Cycle t = 0; t < 64; ++t) {
    EXPECT_EQ(admission.decide(tenant_request(0, t, stories[0], t + 1), t,
                               outlook),
              std::nullopt);
    admission.record_admitted(0);
  }
  EXPECT_EQ(admission.sheds().total(), 0U);
  EXPECT_EQ(admission.tenant_admitted()[0], 64U);
}

TEST(Admission, TokenBucketQuotaRefillsOverTime) {
  std::vector<TenantConfig> tenants(1);
  tenants[0].quota_interarrival_cycles = 100.0;
  tenants[0].quota_burst = 2.0;
  AdmissionController admission(AdmissionConfig{}, tenants);
  const auto stories = tiny_stories(1);
  const AdmissionOutlook outlook;

  // The bucket starts full: the whole burst is admitted at cycle 0...
  EXPECT_EQ(admission.decide(tenant_request(0, 0, stories[0]), 0, outlook),
            std::nullopt);
  EXPECT_EQ(admission.decide(tenant_request(0, 0, stories[0]), 0, outlook),
            std::nullopt);
  // ...then the third request in the same cycle is over quota.
  EXPECT_EQ(admission.decide(tenant_request(0, 0, stories[0]), 0, outlook),
            ShedReason::kQuota);
  // Half a token at +50 cycles: still shed.
  EXPECT_EQ(admission.decide(tenant_request(0, 50, stories[0]), 50, outlook),
            ShedReason::kQuota);
  // A full token has accrued by +150 (the +50 probe consumed nothing).
  EXPECT_EQ(
      admission.decide(tenant_request(0, 150, stories[0]), 150, outlook),
      std::nullopt);
}

TEST(Admission, QuotaIsPerTenant) {
  std::vector<TenantConfig> tenants(2);
  tenants[0].quota_interarrival_cycles = 1'000.0;
  tenants[0].quota_burst = 1.0;
  // Tenant 1 has no quota at all.
  AdmissionController admission(AdmissionConfig{}, tenants);
  const auto stories = tiny_stories(1);
  const AdmissionOutlook outlook;

  EXPECT_EQ(admission.decide(tenant_request(0, 0, stories[0]), 0, outlook),
            std::nullopt);
  EXPECT_EQ(admission.decide(tenant_request(0, 0, stories[0]), 0, outlook),
            ShedReason::kQuota);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(admission.decide(tenant_request(1, 0, stories[0]), 0, outlook),
              std::nullopt);
  }
}

TEST(Admission, QuotasCanBeDisabled) {
  std::vector<TenantConfig> tenants(1);
  tenants[0].quota_interarrival_cycles = 1'000.0;
  tenants[0].quota_burst = 1.0;
  AdmissionConfig config;
  config.enforce_quotas = false;
  AdmissionController admission(config, tenants);
  const auto stories = tiny_stories(1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(admission.decide(tenant_request(0, 0, stories[0]), 0, {}),
              std::nullopt);
  }
}

TEST(Admission, OverloadShedsLowestTierFirst) {
  // Tiers 0/1/2 with watermark 0.5: thresholds sit at 0.5 (tier 2),
  // 2/3 (tier 1) and 5/6 (tier 0) — lowest priority sheds first, and
  // more important tiers hold on as occupancy climbs.
  std::vector<TenantConfig> tenants(3);
  tenants[0].tier = 0;
  tenants[1].tier = 1;
  tenants[2].tier = 2;
  AdmissionConfig config;
  config.overload_pending_requests = 600;
  config.overload_watermark = 0.5;
  AdmissionController admission(config, tenants);
  const auto stories = tiny_stories(1);

  const auto decide_at = [&](TenantId tenant, std::size_t pending) {
    AdmissionOutlook outlook;
    outlook.pending_requests = pending;
    return admission.decide(tenant_request(tenant, 0, stories[0]), 0,
                            outlook);
  };

  // Below the watermark everyone is admitted.
  for (TenantId t = 0; t < 3; ++t) {
    EXPECT_EQ(decide_at(t, 299), std::nullopt);
  }
  // At occupancy 0.5 only tier 2 sheds.
  EXPECT_EQ(decide_at(2, 300), ShedReason::kOverload);
  EXPECT_EQ(decide_at(1, 300), std::nullopt);
  EXPECT_EQ(decide_at(0, 300), std::nullopt);
  // At occupancy 0.7 tiers 1 and 2 shed; tier 0 still holds.
  EXPECT_EQ(decide_at(2, 420), ShedReason::kOverload);
  EXPECT_EQ(decide_at(1, 420), ShedReason::kOverload);
  EXPECT_EQ(decide_at(0, 420), std::nullopt);
  // Past tier 0's 5/6 threshold even the top tier degrades.
  EXPECT_EQ(decide_at(0, 550), ShedReason::kOverload);
}

TEST(Admission, DoomShedsOnlyProvablyLateRequests) {
  std::vector<TenantConfig> tenants(1);
  AdmissionConfig config;
  config.shed_doomed = true;
  config.doom_backlog_factor = 1.0;
  AdmissionController admission(config, tenants);
  const auto stories = tiny_stories(1);

  AdmissionOutlook outlook;
  outlook.service_estimate = 1'000;
  outlook.backlog_cycles_per_device = 0;
  // Deadline 500 cycles out, service alone takes 1000: doomed.
  EXPECT_EQ(admission.decide(tenant_request(0, 0, stories[0], 500), 0,
                             outlook),
            ShedReason::kDoomed);
  // Deadline 1500 out: meetable.
  EXPECT_EQ(admission.decide(tenant_request(0, 0, stories[0], 1'500), 0,
                             outlook),
            std::nullopt);
  // Backlog pushes the ETA past the deadline.
  outlook.backlog_cycles_per_device = 1'000;
  EXPECT_EQ(admission.decide(tenant_request(0, 0, stories[0], 1'500), 0,
                             outlook),
            ShedReason::kDoomed);
  // No deadline: never doomed.
  EXPECT_EQ(
      admission.decide(tenant_request(0, 0, stories[0]), 0, outlook),
      std::nullopt);
  // No service observation yet: the doom test never fires blind.
  outlook.service_estimate = 0;
  EXPECT_EQ(admission.decide(tenant_request(0, 0, stories[0], 1), 0,
                             outlook),
            std::nullopt);
}

TEST(Admission, UnifiedShedAccounting) {
  std::vector<TenantConfig> tenants(2);
  AdmissionController admission(AdmissionConfig{}, tenants);
  admission.record_shed(0, ShedReason::kQueueFull);
  admission.record_shed(0, ShedReason::kQueueFull);
  admission.record_shed(1, ShedReason::kQuota);
  admission.record_admitted(1);

  EXPECT_EQ(admission.sheds().total(), 3U);
  EXPECT_EQ(admission.sheds().count(ShedReason::kQueueFull), 2U);
  EXPECT_EQ(admission.sheds().count(ShedReason::kQuota), 1U);
  EXPECT_EQ(admission.tenant_sheds()[0].total(), 2U);
  EXPECT_EQ(admission.tenant_sheds()[1].count(ShedReason::kQuota), 1U);
  EXPECT_EQ(admission.tenant_admitted()[0], 0U);
  EXPECT_EQ(admission.tenant_admitted()[1], 1U);
}

TEST(Admission, ValidatesConfigAndTenantIds) {
  std::vector<TenantConfig> bad_quota(1);
  bad_quota[0].quota_interarrival_cycles = -1.0;
  EXPECT_THROW(AdmissionController(AdmissionConfig{}, bad_quota),
               std::invalid_argument);

  std::vector<TenantConfig> bad_burst(1);
  bad_burst[0].quota_interarrival_cycles = 100.0;
  bad_burst[0].quota_burst = 0.5;  // a quota that can never admit
  EXPECT_THROW(AdmissionController(AdmissionConfig{}, bad_burst),
               std::invalid_argument);

  AdmissionConfig bad_watermark;
  bad_watermark.overload_watermark = 0.0;
  EXPECT_THROW(AdmissionController(bad_watermark, {}),
               std::invalid_argument);

  AdmissionController admission(AdmissionConfig{}, {});
  const auto stories = tiny_stories(1);
  EXPECT_THROW(
      (void)admission.decide(tenant_request(5, 0, stories[0]), 0, {}),
      std::out_of_range);
  EXPECT_THROW(admission.record_shed(5, ShedReason::kQuota),
               std::out_of_range);
}

}  // namespace
}  // namespace mann::serve
