// ServerSession: the incremental serving API must be a refactoring of
// Server::run(), not a reinterpretation — the closed loop is the spec.
// The core assertions here: (1) run() equals a submit-everything /
// step / drain / finalize composition on the deterministic report
// fields; (2) *when* the driver steps is irrelevant — any step_until
// horizon schedule replays the same cycles; (3) the completion stream
// is a complete, (cycle, id)-sorted ledger; (4) live reconfiguration
// lands mid-run without dropping queued or in-flight requests.
#include "serve/session.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "serve/outcome.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

namespace mann::serve {
namespace {

using testing::tiny_program;
using testing::tiny_stories;

std::vector<ServedModel> two_models(
    const std::vector<data::EncodedStory>& stories) {
  std::vector<ServedModel> models;
  models.push_back({tiny_program(7), stories});
  models.push_back({tiny_program(8), stories});
  return models;
}

/// A fixed arrival schedule dense enough to exercise batching: bursts
/// around a few cycles plus a sparse tail.
std::vector<TraceEntry> fixed_trace() {
  std::vector<TraceEntry> trace;
  const sim::Cycle bases[] = {1'000, 1'000, 1'200, 40'000, 40'000,
                              41'000, 90'000, 400'000, 400'100, 900'000};
  for (std::size_t i = 0; i < std::size(bases); ++i) {
    TraceEntry entry;
    entry.arrival_cycle = bases[i];
    entry.task = i % 2;
    entry.tenant = static_cast<TenantId>(i % 3);
    trace.push_back(entry);
  }
  return trace;
}

ServerConfig session_config() {
  ServerConfig config;
  config.batcher.max_batch = 4;
  config.batcher.max_wait_cycles = 30'000;
  config.scheduler.devices = 2;
  config.traffic.slo.default_deadline_cycles = 600'000;
  config.traffic.tenants.resize(3);
  return config;
}

/// Equality on every deterministic report field (host-execution fields —
/// wall time, worker count, cycle-cache stats — excluded by design).
void expect_reports_equal(const ServingReport& a, const ServingReport& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.early_exit_rate, b.early_exit_rate);
  EXPECT_DOUBLE_EQ(a.latency.mean_cycles, b.latency.mean_cycles);
  EXPECT_DOUBLE_EQ(a.latency.max_cycles, b.latency.max_cycles);
  EXPECT_DOUBLE_EQ(a.queue_wait.mean_cycles, b.queue_wait.mean_cycles);
  EXPECT_EQ(a.deadline_total, b.deadline_total);
  EXPECT_EQ(a.deadline_missed, b.deadline_missed);
  for (std::size_t r = 0; r < kShedReasonCount; ++r) {
    const auto reason = static_cast<ShedReason>(r);
    EXPECT_EQ(a.shed.count(reason), b.shed.count(reason));
  }
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i], b.tenants[i]);
  }
  EXPECT_DOUBLE_EQ(a.fairness_index, b.fairness_index);
  EXPECT_DOUBLE_EQ(a.mean_batch_size, b.mean_batch_size);
  EXPECT_DOUBLE_EQ(a.mean_device_utilization, b.mean_device_utilization);
  EXPECT_EQ(a.model_uploads, b.model_uploads);
  EXPECT_EQ(a.stolen_batches, b.stolen_batches);
  EXPECT_DOUBLE_EQ(a.energy.total_joules, b.energy.total_joules);
}

/// The closed-loop baseline: the same schedule served by Server::run().
ServingReport closed_loop_report(const std::vector<TraceEntry>& trace,
                                 const std::vector<ServedModel>& models) {
  ServerConfig config = session_config();
  config.traffic.process = ArrivalProcess::kTrace;
  config.traffic.trace = trace;
  const Server server(config, models);
  return server.run(trace.size());
}

TEST(ServerSession, RunEqualsSubmitStepDrainComposition) {
  const auto stories = tiny_stories(8);
  const auto models = two_models(stories);
  const auto trace = fixed_trace();
  const ServingReport closed = closed_loop_report(trace, models);

  // Open loop: the same schedule injected via submit(), clock held to
  // the last vouched-for arrival between submissions (the daemon's
  // lockstep discipline), then drained.
  ServerSession session(session_config(), models);
  for (const TraceEntry& entry : trace) {
    SubmitRequest request;
    request.task = entry.task;
    request.tenant = entry.tenant;
    request.at_cycle = entry.arrival_cycle;
    const RequestId id = session.submit(request);
    (void)id;
    (void)session.step_until(session.last_submitted_arrival());
  }
  session.drain();
  const ServingReport open = session.finalize();
  EXPECT_TRUE(session.finalized());

  expect_reports_equal(closed, open);
}

TEST(ServerSession, SteppingGranularityDoesNotChangeTheTimeline) {
  const auto stories = tiny_stories(8);
  const auto models = two_models(stories);
  const auto trace = fixed_trace();

  // One shot: submit everything, finalize.
  ServerSession one_shot(session_config(), models);
  for (const TraceEntry& entry : trace) {
    SubmitRequest request{entry.task, entry.tenant, entry.arrival_cycle, 0};
    (void)one_shot.submit(request);
  }
  one_shot.drain();
  const ServingReport a = one_shot.finalize();

  // Fussy driver: submit everything, then crawl the clock forward in
  // awkward horizons (including no-op repeats) before finalizing.
  ServerSession fussy(session_config(), models);
  for (const TraceEntry& entry : trace) {
    SubmitRequest request{entry.task, entry.tenant, entry.arrival_cycle, 0};
    (void)fussy.submit(request);
  }
  for (const sim::Cycle limit :
       {sim::Cycle{1}, sim::Cycle{1'001}, sim::Cycle{1'001},
        sim::Cycle{39'999}, sim::Cycle{41'000}, sim::Cycle{500'000}}) {
    (void)fussy.step_until(limit);
    EXPECT_LE(fussy.now(), limit);
  }
  (void)fussy.step(123);  // relative stepping composes too
  fussy.drain();
  const ServingReport b = fussy.finalize();

  expect_reports_equal(a, b);
}

TEST(ServerSession, CompletionStreamIsACompleteSortedLedger) {
  const auto stories = tiny_stories(8);
  const auto models = two_models(stories);
  const auto trace = fixed_trace();

  ServerSession session(session_config(), models);
  std::vector<Completion> stream;
  for (const TraceEntry& entry : trace) {
    SubmitRequest request{entry.task, entry.tenant, entry.arrival_cycle, 0};
    (void)session.submit(request);
    (void)session.step_until(session.last_submitted_arrival());
    // Polling mid-run must compose with polling at the end.
    for (Completion& c : session.poll_completions()) {
      stream.push_back(std::move(c));
    }
  }
  session.drain();
  (void)session.step(0);
  for (Completion& c : session.poll_completions()) {
    stream.push_back(std::move(c));
  }

  // Exactly one resolution per offered request, ids 0..N-1 each once.
  ASSERT_EQ(stream.size(), trace.size());
  std::vector<bool> seen(trace.size(), false);
  for (const Completion& c : stream) {
    ASSERT_LT(c.response.id, trace.size());
    EXPECT_FALSE(seen[c.response.id]);
    seen[c.response.id] = true;
    if (outcome_is_completion(c.outcome)) {
      EXPECT_EQ(c.cycle, c.response.complete_cycle);
    }
  }
  // Globally (cycle, id)-sorted across poll windows.
  for (std::size_t i = 1; i < stream.size(); ++i) {
    const bool ordered =
        stream[i - 1].cycle < stream[i].cycle ||
        (stream[i - 1].cycle == stream[i].cycle &&
         stream[i - 1].response.id < stream[i].response.id);
    EXPECT_TRUE(ordered) << "stream out of order at index " << i;
  }
  // The report agrees with the stream's own accounting.
  const ServingReport report = session.finalize();
  EXPECT_EQ(report.completed + report.rejected, stream.size());
}

TEST(ServerSession, LiveReconfigurationKeepsInFlightRequests) {
  const auto stories = tiny_stories(8);
  const auto models = two_models(stories);
  ServerConfig config = session_config();
  config.scheduler.policy = SchedulerPolicy::kWfq;
  ServerSession session(config, models);

  // Get work queued and in flight, then rewrite the contracts under it.
  for (int i = 0; i < 6; ++i) {
    SubmitRequest request;
    request.task = static_cast<std::size_t>(i % 2);
    request.tenant = static_cast<TenantId>(i % 3);
    request.at_cycle = 1'000 + static_cast<sim::Cycle>(i) * 50;
    (void)session.submit(request);
  }
  (void)session.step_until(1'200);

  TenantConfig vip;
  vip.tier = 1;
  vip.weight = 5.0;
  vip.slo_deadline_cycles = 2'000'000;
  session.set_tenant(1, vip);
  SloConfig slo;
  slo.default_deadline_cycles = 2'000'000;
  session.set_slo(slo);
  EXPECT_TRUE(session.set_policy(SchedulerPolicy::kEdf));
  EXPECT_TRUE(session.set_policy(SchedulerPolicy::kWfq));

  // More traffic under the new contracts, then drain: nothing dropped.
  for (int i = 0; i < 4; ++i) {
    SubmitRequest request;
    request.task = static_cast<std::size_t>(i % 2);
    request.tenant = 1;
    request.at_cycle = 10'000 + static_cast<sim::Cycle>(i) * 50;
    (void)session.submit(request);
  }
  session.drain();
  const ServingReport report = session.finalize();
  EXPECT_EQ(report.offered, 10U);
  EXPECT_EQ(report.completed, 10U);
  EXPECT_EQ(report.rejected, 0U);
  // The report's tenant registry echoes the live update.
  ASSERT_EQ(report.tenants.size(), 3U);
  EXPECT_EQ(report.tenants[1].tier, 1U);
  EXPECT_DOUBLE_EQ(report.tenants[1].weight, 5.0);
}

TEST(ServerSession, PolicySwitchRespectsConstructionLayout) {
  const auto stories = tiny_stories(4);
  const auto models = two_models(stories);
  // Built under EDF (no tenant lanes): WFQ cannot be reached live.
  ServerSession session(session_config(), models);
  EXPECT_TRUE(session.set_policy(SchedulerPolicy::kFifo));
  EXPECT_FALSE(session.set_policy(SchedulerPolicy::kWfq));
  EXPECT_TRUE(session.set_policy(SchedulerPolicy::kEdf));
}

TEST(ServerSession, ValidatesSubmissionsAndLifecycle) {
  const auto stories = tiny_stories(4);
  const auto models = two_models(stories);
  ServerSession session(session_config(), models);

  SubmitRequest bad_task;
  bad_task.task = 99;
  EXPECT_THROW((void)session.submit(bad_task), std::out_of_range);
  SubmitRequest bad_tenant;
  bad_tenant.tenant = 7;
  EXPECT_THROW((void)session.submit(bad_tenant), std::out_of_range);
  EXPECT_THROW(session.set_tenant(9, TenantConfig{}), std::out_of_range);

  (void)session.submit(SubmitRequest{});
  const ServingReport report = session.finalize();
  EXPECT_EQ(report.completed, 1U);
  EXPECT_THROW((void)session.submit(SubmitRequest{}), std::logic_error);
  EXPECT_THROW((void)session.finalize(), std::logic_error);
}

TEST(Server, StartSubmitFinalizeMatchesRun) {
  const auto stories = tiny_stories(8);
  const auto trace = fixed_trace();
  const ServingReport closed =
      closed_loop_report(trace, two_models(stories));

  // The same composition through the Server facade (which owns the
  // models and the session).
  Server server(session_config(), two_models(stories));
  ServerSession& session = server.start();
  EXPECT_EQ(server.session(), &session);
  EXPECT_THROW((void)server.start(), std::logic_error);
  for (const TraceEntry& entry : trace) {
    SubmitRequest request{entry.task, entry.tenant, entry.arrival_cycle, 0};
    (void)server.submit(request);
  }
  server.drain();
  const ServingReport open = server.finalize();
  EXPECT_EQ(server.session(), nullptr);
  expect_reports_equal(closed, open);

  // The server is reusable after finalize — and run() still works.
  const ServingReport again = [&] {
    ServerConfig config = session_config();
    config.traffic.process = ArrivalProcess::kTrace;
    config.traffic.trace = trace;
    const Server rerun(config, two_models(stories));
    return rerun.run(trace.size());
  }();
  expect_reports_equal(closed, again);
}

TEST(ServerSession, MixedGeneratedAndSubmittedTraffic) {
  const auto stories = tiny_stories(8);
  const auto models = two_models(stories);
  ServerConfig config = session_config();
  config.traffic.mean_interarrival_cycles = 20'000.0;
  config.traffic.seed = 5;
  SessionOptions options;
  options.total_requests = 6;  // closed-loop generator alongside submit()
  ServerSession session(config, models, options);

  // Injected ids start after the generator's range.
  SubmitRequest request;
  request.at_cycle = 1;
  EXPECT_EQ(session.submit(request), 6U);
  session.drain();
  const ServingReport report = session.finalize();
  EXPECT_EQ(report.offered, 7U);
  EXPECT_EQ(report.completed + report.rejected, 7U);
}

}  // namespace
}  // namespace mann::serve
