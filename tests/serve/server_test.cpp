#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "serve/request.hpp"
#include "serve_test_util.hpp"

namespace mann::serve {
namespace {

using testing::tiny_program;
using testing::tiny_stories;

ServerConfig small_server_config() {
  ServerConfig config;
  config.traffic.mean_interarrival_cycles = 5'000.0;
  config.traffic.seed = 99;
  config.batcher.max_batch = 4;
  config.batcher.max_wait_cycles = 50'000;
  config.scheduler.devices = 2;
  return config;
}

std::vector<ServedModel> two_models(
    const std::vector<data::EncodedStory>& stories) {
  std::vector<ServedModel> models;
  models.push_back({tiny_program(7), stories});
  models.push_back({tiny_program(8), stories});
  return models;
}

TEST(TrafficGenerator, DeterministicFromSeed) {
  const auto stories = tiny_stories(5);
  TrafficConfig config;
  config.mean_interarrival_cycles = 1'000.0;
  config.seed = 11;
  auto emit_all = [&] {
    TrafficGenerator gen(config, {{0, stories}}, 20);
    std::vector<InferenceRequest> out;
    while (auto r = gen.poll(sim::kNever - 1)) {
      out.push_back(*r);
    }
    return out;
  };
  const auto first = emit_all();
  const auto second = emit_all();
  ASSERT_EQ(first.size(), 20U);
  ASSERT_EQ(second.size(), 20U);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].enqueue_cycle, second[i].enqueue_cycle);
    EXPECT_EQ(first[i].story, second[i].story);
    EXPECT_EQ(first[i].id, i);
  }
  // Arrivals are strictly ordered and roughly at the configured rate.
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_GT(first[i].enqueue_cycle, first[i - 1].enqueue_cycle);
  }
}

TEST(TrafficGenerator, HonoursArrivalTimes) {
  const auto stories = tiny_stories(3);
  TrafficConfig config;
  config.mean_interarrival_cycles = 1'000.0;
  TrafficGenerator gen(config, {{0, stories}}, 4);
  const sim::Cycle first_arrival = gen.next_arrival();
  ASSERT_NE(first_arrival, sim::kNever);
  EXPECT_FALSE(gen.poll(first_arrival - 1).has_value());
  EXPECT_TRUE(gen.poll(first_arrival).has_value());
}

TEST(TrafficGenerator, BurstyKeepsLongRunRate) {
  const auto stories = tiny_stories(8);
  TrafficConfig config;
  config.process = ArrivalProcess::kBursty;
  config.mean_interarrival_cycles = 2'000.0;
  config.burst_mean = 6.0;
  config.burst_gap_cycles = 32.0;
  TrafficGenerator gen(config, {{0, stories}}, 2'000);
  sim::Cycle last = 0;
  while (auto r = gen.poll(sim::kNever - 1)) {
    last = r->enqueue_cycle;
  }
  const double mean_gap = static_cast<double>(last) / 2'000.0;
  // Long-run rate within 25% of the Poisson-equivalent configuration.
  EXPECT_GT(mean_gap, 1'500.0);
  EXPECT_LT(mean_gap, 2'500.0);
}

TEST(TrafficGenerator, RejectsBurstGapExceedingRateBudget) {
  const auto stories = tiny_stories(2);
  TrafficConfig config;
  config.process = ArrivalProcess::kBursty;
  config.mean_interarrival_cycles = 50.0;
  config.burst_mean = 8.0;
  config.burst_gap_cycles = 64.0;  // 7*64 > 8*50: rate cannot be honoured
  EXPECT_THROW(TrafficGenerator(config, {{0, stories}}, 10),
               std::invalid_argument);
}

TEST(Server, AnswersEveryRequestDeterministically) {
  const auto stories = tiny_stories(6);
  const Server server(small_server_config(), two_models(stories));
  const ServingReport first = server.run(40);
  const ServingReport second = server.run(40);

  EXPECT_EQ(first.offered, 40U);
  EXPECT_EQ(first.completed, 40U);
  EXPECT_EQ(first.rejected, 0U);
  EXPECT_EQ(first.makespan_cycles, second.makespan_cycles);
  EXPECT_EQ(first.latency.p99_cycles, second.latency.p99_cycles);
  EXPECT_EQ(first.batching.batches_out, second.batching.batches_out);
  EXPECT_GT(first.throughput_stories_per_second, 0.0);
  EXPECT_GT(first.mean_batch_size, 0.0);
  EXPECT_LE(first.mean_batch_size,
            static_cast<double>(small_server_config().batcher.max_batch));
  EXPECT_GE(first.latency.p99_cycles, first.latency.p50_cycles);
}

TEST(Server, NoRequestDroppedUnderBurstLoad) {
  const auto stories = tiny_stories(8);
  ServerConfig config = small_server_config();
  config.traffic.process = ArrivalProcess::kBursty;
  config.traffic.mean_interarrival_cycles = 1'000.0;
  config.traffic.burst_mean = 12.0;
  config.traffic.burst_gap_cycles = 16.0;
  const Server server(config, two_models(stories));
  const ServingReport report = server.run(200);
  EXPECT_EQ(report.offered, 200U);
  EXPECT_EQ(report.completed, 200U);
  EXPECT_EQ(report.rejected, 0U);
  EXPECT_EQ(report.batching.requests_rejected, 0U);
}

TEST(Server, PoolScalingImprovesThroughput) {
  const auto stories = tiny_stories(8);
  // Saturating load: arrivals far faster than one device can serve, so
  // makespan is service-bound, not arrival-bound, at both pool sizes.
  ServerConfig config = small_server_config();
  config.traffic.mean_interarrival_cycles = 100.0;

  config.scheduler.devices = 1;
  const ServingReport one =
      Server(config, two_models(stories)).run(120);
  config.scheduler.devices = 4;
  const ServingReport four =
      Server(config, two_models(stories)).run(120);

  EXPECT_EQ(one.completed, 120U);
  EXPECT_EQ(four.completed, 120U);
  EXPECT_GT(four.throughput_stories_per_second,
            1.5 * one.throughput_stories_per_second);
  // More devices can only shorten queues at equal offered load.
  EXPECT_LE(four.latency.p99_cycles, one.latency.p99_cycles);
}

TEST(Server, WarmPoolAmortisesModelUploads) {
  const auto stories = tiny_stories(8);
  ServerConfig config = small_server_config();
  config.scheduler.devices = 2;
  const Server server(config, two_models(stories));
  const ServingReport report = server.run(80);
  // Far fewer uploads than batches: devices stay warm across batches.
  EXPECT_GT(report.batching.batches_out, report.model_uploads);
  EXPECT_GE(report.model_uploads, 2U);  // each program uploaded at least once
}

TEST(Server, ServingAccuracyMatchesDirectRuns) {
  const auto stories = tiny_stories(10);
  ServerConfig config = small_server_config();
  std::vector<ServedModel> models;
  models.push_back({tiny_program(7), stories});
  const Server server(config, std::move(models));
  const ServingReport report = server.run(50);

  // Ground truth: the same program run as one offline batch.
  const accel::Accelerator device(config.accel, tiny_program(7));
  const accel::RunResult offline = device.run(stories);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < stories.size(); ++i) {
    correct += offline.stories[i].prediction == stories[i].answer ? 1 : 0;
  }
  const double offline_accuracy =
      static_cast<double>(correct) / static_cast<double>(stories.size());
  // The generator walks the corpus round-robin, so 50 requests over 10
  // stories cover each story 5 times: identical accuracy.
  EXPECT_DOUBLE_EQ(report.accuracy, offline_accuracy);
}

TEST(Server, RejectsEmptyConfiguration) {
  EXPECT_THROW(Server(small_server_config(), {}), std::invalid_argument);
  const std::vector<data::EncodedStory> empty;
  std::vector<ServedModel> models;
  models.push_back({tiny_program(7), empty});
  EXPECT_THROW(Server(small_server_config(), std::move(models)),
               std::invalid_argument);
}

}  // namespace
}  // namespace mann::serve
