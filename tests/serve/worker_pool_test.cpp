#include "serve/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

namespace mann::serve {
namespace {

TEST(WorkerPool, RejectsZeroWorkers) {
  EXPECT_THROW(WorkerPool(0), std::invalid_argument);
}

TEST(WorkerPool, RunsEveryJobExactlyOnce) {
  WorkerPool pool(2);
  EXPECT_EQ(pool.size(), 2U);

  std::atomic<int> counter{0};
  const int jobs = 64;
  for (int i = 0; i < jobs; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();

  EXPECT_EQ(counter.load(), jobs);
  EXPECT_EQ(pool.jobs_submitted(), static_cast<std::uint64_t>(jobs));
  EXPECT_EQ(pool.jobs_completed(), static_cast<std::uint64_t>(jobs));
  EXPECT_EQ(pool.outstanding(), 0U);
}

TEST(WorkerPool, WaitIdleBlocksUntilSlowJobFinishes) {
  WorkerPool pool(1);
  std::atomic<bool> done{false};
  pool.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done.store(true);
  });
  pool.wait_idle();
  EXPECT_TRUE(done.load());
}

TEST(WorkerPool, DestructorDrainsQueuedJobs) {
  std::atomic<int> counter{0};
  {
    WorkerPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    // No wait_idle: shutdown itself must not drop queued work (dropped
    // speculation would be wasted, not wrong, but blocked waiters and
    // lost completions would be).
  }
  EXPECT_EQ(counter.load(), 16);
}

TEST(WorkerPool, AcceptsJobsFromMultipleProducers) {
  WorkerPool pool(2);
  std::atomic<int> counter{0};
  const int per_producer = 50;
  auto produce = [&] {
    for (int i = 0; i < per_producer; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  };
  std::thread a(produce);
  std::thread b(produce);
  a.join();
  b.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2 * per_producer);
}

TEST(WorkerPool, JobsRunOffTheSubmittingThread) {
  WorkerPool pool(1);
  const std::thread::id main_id = std::this_thread::get_id();
  std::atomic<bool> off_thread{false};
  pool.submit([&] { off_thread.store(std::this_thread::get_id() != main_id); });
  pool.wait_idle();
  EXPECT_TRUE(off_thread.load());
}

}  // namespace
}  // namespace mann::serve
