#include "serve/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "serve/request.hpp"

namespace mann::serve {
namespace {

InferenceResponse response_with_latency(sim::Cycle enqueue, sim::Cycle done,
                                        bool correct = true) {
  InferenceResponse r;
  r.id = 1;
  r.batch_size = 4;
  r.prediction = 3;
  r.answer = correct ? 3 : 5;
  r.enqueue_cycle = enqueue;
  r.dispatch_cycle = enqueue;
  r.complete_cycle = done;
  return r;
}

TEST(ServingMetrics, RejectsNonPositiveClock) {
  EXPECT_THROW(ServingMetrics(0.0), std::invalid_argument);
  EXPECT_THROW(ServingMetrics(-1.0), std::invalid_argument);
}

TEST(ServingMetrics, EmptyWindowFinalizesToZeros) {
  const ServingMetrics metrics(100.0e6);
  const ServingReport report = metrics.finalize({});

  EXPECT_EQ(report.completed, 0U);
  EXPECT_DOUBLE_EQ(report.throughput_stories_per_second, 0.0);
  EXPECT_DOUBLE_EQ(report.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_batch_size, 0.0);
  // Percentiles over an empty window are zero, not NaN or a crash.
  EXPECT_DOUBLE_EQ(report.latency.p50_cycles, 0.0);
  EXPECT_DOUBLE_EQ(report.latency.p99_cycles, 0.0);
  EXPECT_DOUBLE_EQ(report.latency.max_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.queue_wait.mean_cycles, 0.0);
  EXPECT_DOUBLE_EQ(report.host_stories_per_second, 0.0);
}

TEST(ServingMetrics, SingleSampleCollapsesEveryPercentile) {
  ServingMetrics metrics(100.0e6);
  metrics.record(response_with_latency(1'000, 26'000));

  RunTotals totals;
  totals.offered = 1;
  totals.makespan = 26'000;
  totals.max_batch = 8;
  const ServingReport report = metrics.finalize(std::move(totals));

  ASSERT_EQ(report.completed, 1U);
  // One observation: every quantile, the mean and the max agree on it.
  EXPECT_DOUBLE_EQ(report.latency.p50_cycles, 25'000.0);
  EXPECT_DOUBLE_EQ(report.latency.p95_cycles, 25'000.0);
  EXPECT_DOUBLE_EQ(report.latency.p99_cycles, 25'000.0);
  EXPECT_DOUBLE_EQ(report.latency.max_cycles, 25'000.0);
  EXPECT_DOUBLE_EQ(report.latency.mean_cycles, 25'000.0);
  EXPECT_DOUBLE_EQ(report.latency.p50_seconds, 25'000.0 / 100.0e6);
  EXPECT_DOUBLE_EQ(report.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_batch_size, 4.0);
  EXPECT_DOUBLE_EQ(report.batching_efficiency, 0.5);
}

TEST(ServingMetrics, PercentilesOrderedOnSkewedSamples) {
  ServingMetrics metrics(100.0e6);
  for (sim::Cycle latency = 1; latency <= 100; ++latency) {
    metrics.record(response_with_latency(0, latency));
  }
  RunTotals totals;
  totals.offered = 100;
  totals.makespan = 100;
  const ServingReport report = metrics.finalize(std::move(totals));
  EXPECT_DOUBLE_EQ(report.latency.p50_cycles, 50.0);
  EXPECT_DOUBLE_EQ(report.latency.p95_cycles, 95.0);
  EXPECT_DOUBLE_EQ(report.latency.p99_cycles, 99.0);
  EXPECT_DOUBLE_EQ(report.latency.max_cycles, 100.0);
}

TEST(ServingMetrics, CarriesHostExecutionView) {
  ServingMetrics metrics(100.0e6);
  metrics.record(response_with_latency(0, 500));
  metrics.record(response_with_latency(0, 700, /*correct=*/false));

  RunTotals totals;
  totals.offered = 2;
  totals.makespan = 700;
  totals.max_batch = 8;
  totals.host_wall_seconds = 0.5;
  totals.workers = 4;
  totals.cycle_cache_enabled = true;
  totals.cycle_cache.hits = 3;
  totals.cycle_cache.misses = 1;
  const ServingReport report = metrics.finalize(std::move(totals));

  EXPECT_DOUBLE_EQ(report.host_wall_seconds, 0.5);
  EXPECT_DOUBLE_EQ(report.host_stories_per_second, 4.0);  // 2 / 0.5 s
  EXPECT_EQ(report.workers, 4U);
  EXPECT_TRUE(report.cycle_cache_enabled);
  EXPECT_DOUBLE_EQ(report.cycle_cache.hit_rate(), 0.75);
  EXPECT_DOUBLE_EQ(report.accuracy, 0.5);
}

TEST(ServingMetrics, DeadlineHitRateAndPerTaskViolations) {
  ServingMetrics metrics(100.0e6);
  const auto respond = [&](std::size_t task, sim::Cycle done,
                           sim::Cycle deadline) {
    InferenceResponse r = response_with_latency(0, done);
    r.task = task;
    r.deadline_cycle = deadline;
    metrics.record(r);
  };
  respond(0, 1'000, 2'000);            // met
  respond(0, 3'000, 2'000);            // missed
  respond(1, 5'000, 5'000);            // met exactly on the deadline
  respond(2, 9'000, sim::kNever);      // no SLO: never counts as missed

  RunTotals totals;
  totals.offered = 4;
  totals.makespan = 9'000;
  const ServingReport report = metrics.finalize(std::move(totals));

  EXPECT_EQ(report.deadline_total, 3U);
  EXPECT_EQ(report.deadline_missed, 1U);
  EXPECT_DOUBLE_EQ(report.deadline_hit_rate, 2.0 / 3.0);
  ASSERT_EQ(report.task_slo.size(), 3U);
  EXPECT_EQ(report.task_slo[0].task, 0U);
  EXPECT_EQ(report.task_slo[0].with_deadline, 2U);
  EXPECT_EQ(report.task_slo[0].violations, 1U);
  EXPECT_DOUBLE_EQ(report.task_slo[0].hit_rate(), 0.5);
  EXPECT_EQ(report.task_slo[1].violations, 0U);
  EXPECT_EQ(report.task_slo[2].with_deadline, 0U);
  EXPECT_DOUBLE_EQ(report.task_slo[2].hit_rate(), 1.0);
}

TEST(ServingMetrics, NoDeadlinesMeansPerfectHitRate) {
  ServingMetrics metrics(100.0e6);
  metrics.record(response_with_latency(0, 500));
  RunTotals totals;
  totals.offered = 1;
  totals.makespan = 500;
  const ServingReport report = metrics.finalize(std::move(totals));
  EXPECT_EQ(report.deadline_total, 0U);
  EXPECT_DOUBLE_EQ(report.deadline_hit_rate, 1.0);
}

TEST(ServingMetrics, ServingEnergyFoldsActivityAndMakespan) {
  ServingMetrics metrics(100.0e6);
  metrics.record(response_with_latency(0, 1'000'000));
  metrics.record(response_with_latency(0, 1'000'000));

  RunTotals totals;
  totals.offered = 2;
  totals.makespan = 1'000'000;  // 10 ms at 100 MHz
  totals.devices.resize(2);     // two pool devices burn static power
  totals.device_ops.mac = 1'000'000;
  totals.link_active_cycles = 100'000;
  const ServingReport report = metrics.finalize(std::move(totals));

  const power::FpgaPowerConfig power;
  const double seconds = 0.01;
  EXPECT_DOUBLE_EQ(report.energy.dynamic_joules, 1.0e6 * power.mac_j);
  EXPECT_DOUBLE_EQ(report.energy.link_joules,
                   0.001 * power.link_active_watts);
  EXPECT_DOUBLE_EQ(
      report.energy.static_joules,
      (power.static_watts + power.clock_watts_per_hz * 100.0e6) * seconds *
          2.0);
  EXPECT_DOUBLE_EQ(report.energy.total_joules,
                   report.energy.dynamic_joules + report.energy.link_joules +
                       report.energy.static_joules);
  EXPECT_DOUBLE_EQ(report.energy.per_inference_joules,
                   report.energy.total_joules / 2.0);
  EXPECT_DOUBLE_EQ(report.energy.mean_watts,
                   report.energy.total_joules / seconds);
}

TEST(ServingMetrics, CarriesEvictionAndStealingCounters) {
  ServingMetrics metrics(100.0e6);
  metrics.record(response_with_latency(0, 500));
  RunTotals totals;
  totals.offered = 1;
  totals.makespan = 500;
  totals.model_evictions = 7;
  totals.stolen_batches = 3;
  const ServingReport report = metrics.finalize(std::move(totals));
  EXPECT_EQ(report.model_evictions, 7U);
  EXPECT_EQ(report.stolen_batches, 3U);
}

}  // namespace
}  // namespace mann::serve
