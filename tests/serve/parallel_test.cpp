// The parallel-runtime contract: host workers and the service-cycle
// cache change wall-clock only. Every simulated number — the timeline,
// the predictions, the percentiles — is bit-identical for any worker
// count, including the sequential escape hatch (workers = 0).
#include <gtest/gtest.h>

#include <vector>

#include "accel/service_cycle_cache.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

namespace mann::serve {
namespace {

using testing::tiny_program;
using testing::tiny_stories;

ServerConfig parallel_server_config(std::size_t workers) {
  ServerConfig config;
  // Saturating load so the pool stays busy and batches repeat enough for
  // the cache to matter.
  config.traffic.mean_interarrival_cycles = 500.0;
  config.traffic.seed = 2019;
  config.batcher.max_batch = 4;
  config.batcher.max_wait_cycles = 50'000;
  config.scheduler.devices = 2;
  config.scheduler.workers = workers;
  config.scheduler.cache_capacity = 64;
  return config;
}

std::vector<ServedModel> two_models(
    const std::vector<data::EncodedStory>& stories) {
  std::vector<ServedModel> models;
  models.push_back({tiny_program(7), stories});
  models.push_back({tiny_program(8), stories});
  return models;
}

void expect_same_simulated_report(const ServingReport& a,
                                  const ServingReport& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.latency.p50_cycles, b.latency.p50_cycles);
  EXPECT_DOUBLE_EQ(a.latency.p95_cycles, b.latency.p95_cycles);
  EXPECT_DOUBLE_EQ(a.latency.p99_cycles, b.latency.p99_cycles);
  EXPECT_DOUBLE_EQ(a.latency.max_cycles, b.latency.max_cycles);
  EXPECT_DOUBLE_EQ(a.queue_wait.p99_cycles, b.queue_wait.p99_cycles);
  EXPECT_EQ(a.model_uploads, b.model_uploads);
  EXPECT_EQ(a.batching.batches_out, b.batching.batches_out);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].busy_cycles, b.devices[i].busy_cycles);
    EXPECT_EQ(a.devices[i].batches, b.devices[i].batches);
    EXPECT_EQ(a.devices[i].stories, b.devices[i].stories);
    EXPECT_EQ(a.devices[i].model_uploads, b.devices[i].model_uploads);
  }
  EXPECT_EQ(a.queue_stats.pushes, b.queue_stats.pushes);
  EXPECT_EQ(a.queue_stats.pops, b.queue_stats.pops);
}

TEST(ParallelServing, ReportsIdenticalAcrossWorkerCounts) {
  const auto stories = tiny_stories(10);
  const ServingReport sequential =
      Server(parallel_server_config(0), two_models(stories)).run(80);
  ASSERT_EQ(sequential.completed, 80U);
  EXPECT_EQ(sequential.workers, 0U);
  EXPECT_FALSE(sequential.cycle_cache_enabled);

  for (const std::size_t workers : {1U, 2U, 4U}) {
    const ServingReport parallel =
        Server(parallel_server_config(workers), two_models(stories)).run(80);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_same_simulated_report(sequential, parallel);
    EXPECT_EQ(parallel.workers, workers);
    EXPECT_TRUE(parallel.cycle_cache_enabled);
    // Every dispatch went through the cache one way or the other.
    EXPECT_GT(parallel.cycle_cache.hits + parallel.cycle_cache.misses, 0U);
  }
}

TEST(ParallelServing, RepeatedRunIsDeterministic) {
  const auto stories = tiny_stories(10);
  const ServingReport first =
      Server(parallel_server_config(4), two_models(stories)).run(60);
  const ServingReport second =
      Server(parallel_server_config(4), two_models(stories)).run(60);
  expect_same_simulated_report(first, second);
}

TEST(ParallelServing, SharedCacheReplaysRepeatedWorkloadInstantly) {
  const auto stories = tiny_stories(10);
  accel::ServiceCycleCache cache(256);
  ServerConfig config = parallel_server_config(2);
  config.scheduler.cycle_cache = &cache;

  const Server server(config, two_models(stories));
  const ServingReport first = server.run(60);
  const accel::ServiceCycleCacheStats after_first = cache.stats();
  const ServingReport second = server.run(60);

  expect_same_simulated_report(first, second);
  // The second identical run re-simulates nothing at dispatch: every
  // workload it needs was published during the first run.
  const accel::ServiceCycleCacheStats after_second = cache.stats();
  EXPECT_GT(after_second.hits, after_first.hits);
  EXPECT_EQ(after_second.entries, after_first.entries);
}

TEST(ParallelServing, AffinitySpeculationStatsAreDeterministic) {
  const auto stories = tiny_stories(10);
  // The predicted variant is recorded at submit and scored against the
  // simulated timeline at dispatch — a pure function of that timeline,
  // so the score cannot depend on how many workers raced ahead.
  ServerConfig two = parallel_server_config(2);
  ServerConfig four = parallel_server_config(4);
  const ServingReport with_two =
      Server(two, two_models(stories)).run(80);
  const ServingReport with_four =
      Server(four, two_models(stories)).run(80);

  EXPECT_GT(with_two.speculation.speculated, 0U);
  EXPECT_EQ(with_two.speculation.speculated,
            with_two.speculation.useful + with_two.speculation.wasted);
  EXPECT_TRUE(with_two.speculation == with_four.speculation);
  expect_same_simulated_report(with_two, with_four);
}

TEST(ParallelServing, SequentialPathNeverSpeculates) {
  const auto stories = tiny_stories(10);
  const ServingReport sequential =
      Server(parallel_server_config(0), two_models(stories)).run(60);
  EXPECT_EQ(sequential.speculation.speculated, 0U);
  EXPECT_EQ(sequential.speculation.useful, 0U);
  EXPECT_EQ(sequential.speculation.wasted, 0U);
}

TEST(ParallelServing, AffinityOffMatchesSequentialAndStillSpeculates) {
  const auto stories = tiny_stories(10);
  const ServingReport sequential =
      Server(parallel_server_config(0), two_models(stories)).run(80);

  // --no-affinity restores the legacy churn heuristic; either predictor
  // only steers which variant workers pre-simulate, so the simulated
  // report stays bit-identical to the sequential path.
  for (const std::size_t workers : {2U, 4U}) {
    ServerConfig config = parallel_server_config(workers);
    config.scheduler.affinity_speculation = false;
    const ServingReport legacy =
        Server(config, two_models(stories)).run(80);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_same_simulated_report(sequential, legacy);
    EXPECT_GT(legacy.speculation.speculated, 0U);
    EXPECT_EQ(legacy.speculation.speculated,
              legacy.speculation.useful + legacy.speculation.wasted);
  }
}

TEST(ParallelServing, CacheWithoutWorkersIsPureMemoization) {
  const auto stories = tiny_stories(10);
  accel::ServiceCycleCache cache(256);
  ServerConfig config = parallel_server_config(0);
  config.scheduler.cycle_cache = &cache;

  const ServingReport cached =
      Server(config, two_models(stories)).run(60);
  const ServingReport plain =
      Server(parallel_server_config(0), two_models(stories)).run(60);
  expect_same_simulated_report(plain, cached);
  EXPECT_TRUE(cached.cycle_cache_enabled);
  EXPECT_EQ(cached.workers, 0U);
  EXPECT_GT(cache.stats().misses, 0U);
}

}  // namespace
}  // namespace mann::serve
