// End-to-end checks of the mann::obs wiring through serve::Server:
// every lifecycle span closes, the instrument totals agree with the
// serving report, and — the load-bearing invariant — the simulated
// slice of the trace is byte-identical across worker counts, exactly
// like every other simulated number.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

namespace mann::serve {
namespace {

using testing::tiny_program;
using testing::tiny_stories;

struct TracedRun {
  ServingReport report;
  std::vector<obs::TraceEvent> events;
  std::map<std::string, std::uint64_t> counters;
};

TracedRun run_traced(std::size_t workers) {
  const auto stories = tiny_stories(8);
  std::vector<ServedModel> models;
  models.push_back({tiny_program(7), stories});
  models.push_back({tiny_program(8), stories});

  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  ServerConfig config;
  config.traffic.mean_interarrival_cycles = 2'000.0;
  config.traffic.seed = 41;
  config.traffic.slo.default_deadline_cycles = 800'000;
  config.batcher.max_batch = 4;
  config.batcher.max_wait_cycles = 50'000;
  config.scheduler.devices = 2;
  config.scheduler.workers = workers;
  config.metrics = &registry;
  config.trace = &recorder;

  TracedRun run;
  run.report = Server(std::move(config), std::move(models)).run(60);
  run.events = recorder.merged();
  for (const obs::MetricSample& s : registry.snapshot()) {
    if (s.kind == obs::MetricSample::Kind::kCounter) {
      run.counters[s.name] = s.value;
    }
  }
  return run;
}

/// Serializes the deterministic (simulated-domain) slice of the trace:
/// everything except seq and wall_ns, which are host-execution facts.
std::string canonical_sim_trace(const std::vector<obs::TraceEvent>& events) {
  std::string out;
  char line[256];
  for (const obs::TraceEvent& e : events) {
    if (e.domain != obs::Domain::kSim) {
      continue;
    }
    std::snprintf(line, sizeof line,
                  "%s|%s|%d|%u|%llu|%llu|%llu|%lld|%lld|%lld|%lld\n",
                  e.name, e.detail != nullptr ? e.detail : "",
                  static_cast<int>(e.phase), e.track,
                  static_cast<unsigned long long>(e.ts),
                  static_cast<unsigned long long>(e.dur),
                  static_cast<unsigned long long>(e.id),
                  static_cast<long long>(e.task),
                  static_cast<long long>(e.tenant),
                  static_cast<long long>(e.batch),
                  static_cast<long long>(e.deadline));
    out += line;
  }
  return out;
}

TEST(ObsIntegration, LifecycleSpansAreWellFormed) {
  const TracedRun run = run_traced(/*workers=*/0);
  if constexpr (!obs::kEnabled) {
    EXPECT_TRUE(run.events.empty());
    return;
  }
  ASSERT_FALSE(run.events.empty());

  // Pair every async begin with its end; ends must not precede begins.
  std::map<std::pair<std::string, std::uint64_t>, std::uint64_t> open;
  std::size_t request_spans = 0;
  for (const obs::TraceEvent& e : run.events) {
    const std::pair<std::string, std::uint64_t> key{e.name, e.id};
    if (e.phase == obs::Phase::kAsyncBegin) {
      EXPECT_EQ(open.count(key), 0U) << key.first << " begun twice";
      open[key] = e.ts;
      request_spans += key.first == "request" ? 1 : 0;
    } else if (e.phase == obs::Phase::kAsyncEnd) {
      const auto it = open.find(key);
      ASSERT_NE(it, open.end()) << key.first << " ended without begin";
      EXPECT_GE(e.ts, it->second);
      open.erase(it);
    }
  }
  EXPECT_TRUE(open.empty()) << open.size() << " spans never closed";
  // One "request" lifecycle per offered request, shed or served.
  EXPECT_EQ(request_spans, run.report.offered);
}

TEST(ObsIntegration, CountersMatchReport) {
  const TracedRun run = run_traced(/*workers=*/0);
  if constexpr (!obs::kEnabled) {
    EXPECT_TRUE(run.counters.empty());
    return;
  }
  const auto at = [&](const char* name) {
    const auto it = run.counters.find(name);
    return it == run.counters.end() ? ~std::uint64_t{0} : it->second;
  };
  EXPECT_EQ(at("serve.admission.admitted") + run.report.rejected,
            run.report.offered);
  EXPECT_EQ(at("serve.batcher.batches_out"),
            run.report.batching.batches_out);
  EXPECT_EQ(at("serve.scheduler.dispatches"),
            run.report.batching.batches_out);
  EXPECT_EQ(at("serve.scheduler.model_uploads"), run.report.model_uploads);
  EXPECT_EQ(at("serve.scheduler.model_evictions"),
            run.report.model_evictions);
}

TEST(ObsIntegration, SimulatedTraceIdenticalAcrossWorkerCounts) {
  const TracedRun sequential = run_traced(/*workers=*/0);
  const TracedRun threaded = run_traced(/*workers=*/2);

  // The serving contract first: workers must not move simulated numbers.
  EXPECT_EQ(sequential.report.completed, threaded.report.completed);
  EXPECT_EQ(sequential.report.makespan_cycles,
            threaded.report.makespan_cycles);
  EXPECT_EQ(sequential.report.accuracy, threaded.report.accuracy);

  // And the trace inherits it: the simulated-domain slice (every
  // lifecycle span and device event, cycle timestamps and all) is
  // byte-identical; only host-domain tracks may differ.
  EXPECT_EQ(canonical_sim_trace(sequential.events),
            canonical_sim_trace(threaded.events));

  // Worker-sensitive instruments still balance internally.
  if constexpr (obs::kEnabled) {
    const auto& counters = threaded.counters;
    EXPECT_EQ(counters.at("serve.worker_pool.jobs_submitted"),
              counters.at("serve.worker_pool.jobs_completed"));
  }
}

}  // namespace
}  // namespace mann::serve
