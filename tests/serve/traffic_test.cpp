// Diurnal and trace-driven arrival processes, SLO deadline stamping, and
// the trace CSV interchange format.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"
#include "serve_test_util.hpp"

namespace mann::serve {
namespace {

using testing::tiny_program;
using testing::tiny_stories;

std::vector<InferenceRequest> emit_all(const TrafficConfig& config,
                                       std::vector<TaskWorkload> workloads,
                                       std::size_t total) {
  TrafficGenerator gen(config, std::move(workloads), total);
  std::vector<InferenceRequest> out;
  while (auto r = gen.poll(sim::kNever - 1)) {
    out.push_back(*r);
  }
  return out;
}

TEST(DiurnalTraffic, KeepsLongRunRate) {
  const auto stories = tiny_stories(8);
  TrafficConfig config;
  config.process = ArrivalProcess::kDiurnal;
  config.mean_interarrival_cycles = 1'000.0;
  config.diurnal_amplitude = 0.8;
  config.diurnal_period_cycles = 500'000.0;
  const auto requests = emit_all(config, {{0, stories}}, 4'000);
  ASSERT_EQ(requests.size(), 4'000U);
  const double mean_gap =
      static_cast<double>(requests.back().enqueue_cycle) / 4'000.0;
  // Long-run rate within 25% of the flat-Poisson configuration (the
  // sinusoid averages out over the eight periods this spans).
  EXPECT_GT(mean_gap, 750.0);
  EXPECT_LT(mean_gap, 1'250.0);
}

TEST(DiurnalTraffic, PeakIsDenserThanTrough) {
  const auto stories = tiny_stories(8);
  TrafficConfig config;
  config.process = ArrivalProcess::kDiurnal;
  config.mean_interarrival_cycles = 1'000.0;
  config.diurnal_amplitude = 0.9;
  config.diurnal_period_cycles = 1'000'000.0;
  const auto requests = emit_all(config, {{0, stories}}, 3'000);

  // sin peaks at P/4 and troughs at 3P/4; count arrivals in equal-width
  // windows around both across every period covered.
  const auto period = static_cast<sim::Cycle>(config.diurnal_period_cycles);
  std::size_t peak = 0;
  std::size_t trough = 0;
  for (const InferenceRequest& r : requests) {
    const sim::Cycle phase = r.enqueue_cycle % period;
    if (phase < period / 2) {
      ++peak;
    } else {
      ++trough;
    }
  }
  // With A=0.9 the first half-period carries the sinusoid's positive
  // lobe; demand a decisive (not knife-edge) imbalance.
  EXPECT_GT(peak, trough * 2);
}

TEST(DiurnalTraffic, ValidatesModulationParameters) {
  const auto stories = tiny_stories(2);
  TrafficConfig config;
  config.process = ArrivalProcess::kDiurnal;
  config.diurnal_amplitude = 1.0;  // rate would touch zero
  EXPECT_THROW(TrafficGenerator(config, {{0, stories}}, 4),
               std::invalid_argument);
  config.diurnal_amplitude = 0.5;
  config.diurnal_period_cycles = 0.0;
  EXPECT_THROW(TrafficGenerator(config, {{0, stories}}, 4),
               std::invalid_argument);
}

TEST(TraceTraffic, ReplaysScheduleExactly) {
  const auto stories = tiny_stories(4);
  TrafficConfig config;
  config.process = ArrivalProcess::kTrace;
  config.trace = {{100, 1}, {250, 0}, {250, 1}, {900, 0}};
  const auto requests =
      emit_all(config, {{0, stories}, {1, stories}}, 4);
  ASSERT_EQ(requests.size(), 4U);
  EXPECT_EQ(requests[0].enqueue_cycle, 100U);
  EXPECT_EQ(requests[0].task, 1U);
  EXPECT_EQ(requests[1].enqueue_cycle, 250U);
  EXPECT_EQ(requests[1].task, 0U);
  EXPECT_EQ(requests[2].enqueue_cycle, 250U);
  EXPECT_EQ(requests[2].task, 1U);
  EXPECT_EQ(requests[3].enqueue_cycle, 900U);
  EXPECT_EQ(requests[3].task, 0U);
}

TEST(TraceTraffic, LoopsWithShiftWhenRequestsExceedTrace) {
  const auto stories = tiny_stories(4);
  TrafficConfig config;
  config.process = ArrivalProcess::kTrace;
  config.trace = {{100, 0}, {400, 0}};
  const auto requests = emit_all(config, {{0, stories}}, 5);
  ASSERT_EQ(requests.size(), 5U);
  // Span = last + max(1, last/n) = 400 + 200 = 600 per lap.
  EXPECT_EQ(requests[0].enqueue_cycle, 100U);
  EXPECT_EQ(requests[1].enqueue_cycle, 400U);
  EXPECT_EQ(requests[2].enqueue_cycle, 700U);
  EXPECT_EQ(requests[3].enqueue_cycle, 1'000U);
  EXPECT_EQ(requests[4].enqueue_cycle, 1'300U);
}

TEST(TraceTraffic, RejectsMalformedTraces) {
  const auto stories = tiny_stories(2);
  TrafficConfig config;
  config.process = ArrivalProcess::kTrace;
  config.trace = {};
  EXPECT_THROW(TrafficGenerator(config, {{0, stories}}, 2),
               std::invalid_argument);
  config.trace = {{500, 0}, {100, 0}};  // time goes backwards
  EXPECT_THROW(TrafficGenerator(config, {{0, stories}}, 2),
               std::invalid_argument);
  config.trace = {{100, 9}};  // unknown task
  EXPECT_THROW(TrafficGenerator(config, {{0, stories}}, 1),
               std::invalid_argument);
}

TEST(SloDeadlines, StampedFromPerTaskConfig) {
  const auto stories = tiny_stories(4);
  TrafficConfig config;
  config.process = ArrivalProcess::kTrace;
  config.trace = {{100, 0}, {200, 1}, {300, 2}};
  config.slo.default_deadline_cycles = 5'000;
  config.slo.per_task = {0, 1'000};  // task 0 default, task 1 tight
  const auto requests = emit_all(
      config, {{0, stories}, {1, stories}, {2, stories}}, 3);
  ASSERT_EQ(requests.size(), 3U);
  EXPECT_EQ(requests[0].deadline_cycle, 5'100U);
  EXPECT_EQ(requests[1].deadline_cycle, 1'200U);
  EXPECT_EQ(requests[2].deadline_cycle, 5'300U);  // beyond per_task: default
}

TEST(SloDeadlines, NoSloMeansNoDeadline) {
  const auto stories = tiny_stories(2);
  TrafficConfig config;
  config.mean_interarrival_cycles = 1'000.0;
  const auto requests = emit_all(config, {{0, stories}}, 3);
  for (const InferenceRequest& r : requests) {
    EXPECT_EQ(r.deadline_cycle, sim::kNever);
    EXPECT_FALSE(InferenceResponse{.deadline_cycle = r.deadline_cycle}
                     .has_deadline());
  }
}

TEST(TenantTraffic, DefaultsToSingleTenant) {
  const auto stories = tiny_stories(4);
  TrafficConfig config;
  config.mean_interarrival_cycles = 1'000.0;
  const auto requests = emit_all(config, {{0, stories}}, 16);
  for (const InferenceRequest& r : requests) {
    EXPECT_EQ(r.tenant, 0U);
  }
}

TEST(TenantTraffic, DrawsByTrafficShareDeterministically) {
  const auto stories = tiny_stories(8);
  TrafficConfig config;
  config.mean_interarrival_cycles = 500.0;
  config.tenants.resize(3);
  config.tenants[0].traffic_share = 1.0;
  config.tenants[1].traffic_share = 1.0;
  config.tenants[2].traffic_share = 6.0;

  const auto first = emit_all(config, {{0, stories}}, 2'000);
  std::size_t counts[3] = {0, 0, 0};
  for (const InferenceRequest& r : first) {
    ASSERT_LT(r.tenant, 3U);
    ++counts[r.tenant];
  }
  // 6/8 of the traffic should be tenant 2's (loose bounds: the draw is
  // random but seeded).
  EXPECT_GT(counts[2], counts[0] * 3);
  EXPECT_GT(counts[2], counts[1] * 3);
  EXPECT_GT(counts[0], 100U);
  EXPECT_GT(counts[1], 100U);

  // Same seed, same sequence — tenant by tenant.
  const auto second = emit_all(config, {{0, stories}}, 2'000);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].tenant, first[i].tenant);
  }
}

TEST(TenantTraffic, LabelsNeverPerturbArrivalTiming) {
  // The tenant draw uses its own RNG stream: adding a registry must not
  // move a single arrival cycle or task pick.
  const auto stories = tiny_stories(8);
  TrafficConfig plain;
  plain.process = ArrivalProcess::kBursty;
  plain.mean_interarrival_cycles = 1'000.0;
  const auto without = emit_all(plain, {{0, stories}, {1, stories}}, 500);

  TrafficConfig tenanted = plain;
  tenanted.tenants.resize(3);
  tenanted.tenants[2].traffic_share = 5.0;
  const auto with =
      emit_all(tenanted, {{0, stories}, {1, stories}}, 500);

  ASSERT_EQ(with.size(), without.size());
  for (std::size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with[i].enqueue_cycle, without[i].enqueue_cycle);
    EXPECT_EQ(with[i].task, without[i].task);
  }
}

TEST(TenantTraffic, SloOverridePerTenant) {
  const auto stories = tiny_stories(4);
  TrafficConfig config;
  config.process = ArrivalProcess::kTrace;
  config.trace = {{100, 0, 0}, {200, 0, 1}, {300, 0, 2}};
  config.slo.default_deadline_cycles = 5'000;
  config.tenants.resize(3);
  config.tenants[1].slo_deadline_cycles = 1'000;     // tighter contract
  config.tenants[2].slo_deadline_cycles = sim::kNever;  // no SLO at all
  const auto requests = emit_all(config, {{0, stories}}, 3);
  ASSERT_EQ(requests.size(), 3U);
  EXPECT_EQ(requests[0].deadline_cycle, 5'100U);  // task SLO
  EXPECT_EQ(requests[1].deadline_cycle, 1'200U);  // tenant override
  EXPECT_EQ(requests[2].deadline_cycle, sim::kNever);
}

TEST(TenantTraffic, ValidatesSharesAndTraceTenants) {
  const auto stories = tiny_stories(2);
  TrafficConfig config;
  config.tenants.resize(2);
  config.tenants[0].traffic_share = -1.0;
  EXPECT_THROW(TrafficGenerator(config, {{0, stories}}, 2),
               std::invalid_argument);
  config.tenants[0].traffic_share = 0.0;
  config.tenants[1].traffic_share = 0.0;
  EXPECT_THROW(TrafficGenerator(config, {{0, stories}}, 2),
               std::invalid_argument);

  // A trace naming a tenant outside the registry is as malformed as one
  // naming an unknown task.
  TrafficConfig trace_config;
  trace_config.process = ArrivalProcess::kTrace;
  trace_config.trace = {{100, 0, 1}};
  EXPECT_THROW(TrafficGenerator(trace_config, {{0, stories}}, 1),
               std::invalid_argument);
  trace_config.tenants.resize(2);
  EXPECT_NO_THROW(TrafficGenerator(trace_config, {{0, stories}}, 1));
}

TEST(TraceTraffic, ReplaysTenantsFromRecording) {
  const auto stories = tiny_stories(4);
  TrafficConfig config;
  config.process = ArrivalProcess::kTrace;
  config.trace = {{100, 0, 2}, {250, 0, 0}, {400, 0, 1}};
  config.tenants.resize(3);
  const auto requests = emit_all(config, {{0, stories}}, 3);
  ASSERT_EQ(requests.size(), 3U);
  EXPECT_EQ(requests[0].tenant, 2U);
  EXPECT_EQ(requests[1].tenant, 0U);
  EXPECT_EQ(requests[2].tenant, 1U);
}

TEST(TraceCsv, RoundTripsThroughDisk) {
  const std::vector<TraceEntry> entries = {{0, 3}, {120, 0}, {120, 1},
                                           {99'000, 2}};
  const std::string path =
      (std::filesystem::temp_directory_path() / "mann_trace_rt.csv").string();
  save_trace_csv(path, entries);
  const std::vector<TraceEntry> loaded = load_trace_csv(path);
  std::filesystem::remove(path);
  EXPECT_EQ(loaded, entries);
}

TEST(TraceCsv, RoundTripsTenantsThroughDisk) {
  const std::vector<TraceEntry> entries = {
      {0, 3, 1}, {120, 0, 0}, {120, 1, 2}, {99'000, 2, 1}};
  const std::string path =
      (std::filesystem::temp_directory_path() / "mann_trace_rt_v2.csv")
          .string();
  save_trace_csv(path, entries);
  const std::vector<TraceEntry> loaded = load_trace_csv(path);
  std::filesystem::remove(path);
  EXPECT_EQ(loaded, entries);
}

TEST(TraceCsv, AcceptsCommentsBlanksAndHeader) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mann_trace_hdr.csv")
          .string();
  {
    std::ofstream out(path);
    out << "# recorded 2026-07-29\n"
        << "arrival_cycle,task_id\n"
        << "\n"
        << "10,0\n"
        << "  20,1  \n";
  }
  const std::vector<TraceEntry> loaded = load_trace_csv(path);
  std::filesystem::remove(path);
  ASSERT_EQ(loaded.size(), 2U);
  EXPECT_EQ(loaded[0], (TraceEntry{10, 0}));
  EXPECT_EQ(loaded[1], (TraceEntry{20, 1}));
}

TEST(TraceCsv, RejectsGarbageAndBackwardsTime) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mann_trace_bad.csv")
          .string();
  {
    std::ofstream out(path);
    out << "10,zero\n";
  }
  EXPECT_THROW((void)load_trace_csv(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "100,0\n50,0\n";
  }
  EXPECT_THROW((void)load_trace_csv(path), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW((void)load_trace_csv(path), std::runtime_error);  // missing
}

// Every way a row can be malformed must be a loud error with the line
// number, never a silently-skipped or misparsed arrival.
TEST(TraceCsv, RejectsMalformedRows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mann_trace_malformed.csv")
          .string();
  const auto expect_throw_for = [&](const std::string& row) {
    SCOPED_TRACE("row: '" + row + "'");
    {
      std::ofstream out(path);
      out << row << "\n";
    }
    EXPECT_THROW((void)load_trace_csv(path), std::runtime_error);
  };

  expect_throw_for("123");          // truncated: no task column
  expect_throw_for("123,");         // truncated: empty task column
  expect_throw_for(",5");           // truncated: empty cycle column
  expect_throw_for("abc,0");        // non-numeric cycle
  expect_throw_for("1e3,0");        // non-numeric cycle (no floats)
  expect_throw_for("-10,0");        // negative cycle
  expect_throw_for("10,0,");        // truncated: empty tenant column
  expect_throw_for("10,0,bad");     // non-numeric tenant
  expect_throw_for("10,0,1,9");     // too many columns
  expect_throw_for("99999999999999999999,0");  // u64 overflow
  std::filesystem::remove(path);
}

// A task id a trace names but the replayer was never given is a
// configuration error at generator construction, not a silent wrap.
TEST(TraceTraffic, RejectsUnknownTaskIdFromLoadedTrace) {
  const auto stories = tiny_stories(2);
  const std::string path =
      (std::filesystem::temp_directory_path() / "mann_trace_unknown.csv")
          .string();
  {
    std::ofstream out(path);
    out << "arrival_cycle,task_id,tenant_id\n10,0,0\n20,7,0\n";
  }
  TrafficConfig config;
  config.process = ArrivalProcess::kTrace;
  config.trace = load_trace_csv(path);
  std::filesystem::remove(path);
  EXPECT_THROW(TrafficGenerator(config, {{0, stories}}, 2),
               std::invalid_argument);
}

// The tentpole determinism contract: trace-driven replay produces the
// identical simulated timeline for any worker count (speculation must
// never leak into dispatch decisions), under the deadline-aware policy.
TEST(TraceTraffic, ReplayDeterministicAcrossWorkerCounts) {
  const auto stories = tiny_stories(10);
  std::vector<TraceEntry> trace;
  for (sim::Cycle i = 0; i < 60; ++i) {
    trace.push_back({i * 700, i % 2});
  }

  const auto run_with_workers = [&](std::size_t workers) {
    ServerConfig config;
    config.traffic.process = ArrivalProcess::kTrace;
    config.traffic.trace = trace;
    config.traffic.slo.default_deadline_cycles = 400'000;
    config.batcher.max_batch = 4;
    config.batcher.max_wait_cycles = 20'000;
    config.scheduler.devices = 2;
    config.scheduler.dedicated_devices = 2;
    config.scheduler.policy = SchedulerPolicy::kEdf;
    config.scheduler.workers = workers;
    std::vector<ServedModel> models;
    models.push_back({tiny_program(7), stories});
    models.push_back({tiny_program(8), stories});
    return Server(config, std::move(models)).run(60);
  };

  const ServingReport sequential = run_with_workers(0);
  ASSERT_EQ(sequential.completed, 60U);
  for (const std::size_t workers : {1U, 3U}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const ServingReport parallel = run_with_workers(workers);
    EXPECT_EQ(parallel.makespan_cycles, sequential.makespan_cycles);
    EXPECT_DOUBLE_EQ(parallel.accuracy, sequential.accuracy);
    EXPECT_DOUBLE_EQ(parallel.latency.p99_cycles,
                     sequential.latency.p99_cycles);
    EXPECT_EQ(parallel.deadline_missed, sequential.deadline_missed);
    EXPECT_DOUBLE_EQ(parallel.deadline_hit_rate,
                     sequential.deadline_hit_rate);
    EXPECT_EQ(parallel.model_uploads, sequential.model_uploads);
    EXPECT_EQ(parallel.model_evictions, sequential.model_evictions);
    EXPECT_EQ(parallel.stolen_batches, sequential.stolen_batches);
    EXPECT_DOUBLE_EQ(parallel.energy.per_inference_joules,
                     sequential.energy.per_inference_joules);
  }
}

// scale_trace: volume amplification that preserves the trace's shape.
// Replicas jitter inside the local inter-arrival gap, so bursts stay
// bursts and the trough stays a trough at any factor.
TEST(ScaleTrace, KeepsOriginalsAndAddsJitteredReplicas) {
  const std::vector<TraceEntry> base = {
      {1'000, 0, 1}, {1'000, 1, 2}, {5'000, 0, 0}, {90'000, 1, 1}};
  const std::vector<TraceEntry> scaled = scale_trace(base, 3, 42);
  ASSERT_EQ(scaled.size(), base.size() * 3);

  // Arrival-sorted (valid for replay / save_trace_csv).
  for (std::size_t i = 1; i < scaled.size(); ++i) {
    EXPECT_LE(scaled[i - 1].arrival_cycle, scaled[i].arrival_cycle);
  }
  // Every original row survives verbatim, and each original contributes
  // exactly factor rows with its task/tenant pair.
  for (const TraceEntry& original : base) {
    std::size_t verbatim = 0;
    std::size_t family = 0;
    for (const TraceEntry& entry : scaled) {
      verbatim += entry == original ? 1 : 0;
      family += entry.task == original.task && entry.tenant == original.tenant
                    ? 1
                    : 0;
    }
    EXPECT_GE(verbatim, 1u);
    // Both tasks appear twice in `base`, so each (task, tenant) family
    // is exactly one original's replicas.
    EXPECT_EQ(family, 3u);
  }
  // Jitter stays within the local gap: nothing lands past the last
  // original arrival plus its mean-gap tail allowance.
  const sim::Cycle span = base.back().arrival_cycle - base.front().arrival_cycle;
  const sim::Cycle mean_gap = span / (base.size() - 1);
  for (const TraceEntry& entry : scaled) {
    EXPECT_LT(entry.arrival_cycle,
              base.back().arrival_cycle + mean_gap);
  }
}

TEST(ScaleTrace, IsDeterministicPerSeedAndIdentityAtFactorOne) {
  const std::vector<TraceEntry> base = {
      {0, 0, 0}, {200, 1, 1}, {250, 0, 2}, {8'000, 1, 0}};
  EXPECT_EQ(scale_trace(base, 1, 7), base);
  EXPECT_EQ(scale_trace(base, 0, 7), base);  // 0 treated as identity
  EXPECT_EQ(scale_trace(base, 10, 7), scale_trace(base, 10, 7));
  // A different seed moves the replicas (the originals stay).
  EXPECT_NE(scale_trace(base, 10, 7), scale_trace(base, 10, 8));
  EXPECT_TRUE(scale_trace({}, 5, 7).empty());
}

TEST(ScaleTrace, ScaledTraceReplaysDeterministically) {
  const auto stories = testing::tiny_stories(6);
  const std::vector<TraceEntry> base = {
      {1'000, 0, 0}, {1'200, 1, 1}, {40'000, 0, 2}, {41'000, 1, 0}};
  TrafficConfig config;
  config.process = ArrivalProcess::kTrace;
  config.trace = scale_trace(base, 5, 11);
  config.tenants.resize(3);
  const auto first = emit_all(config, {{0, stories}, {1, stories}},
                              config.trace.size());
  const auto second = emit_all(config, {{0, stories}, {1, stories}},
                               config.trace.size());
  ASSERT_EQ(first.size(), base.size() * 5);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].enqueue_cycle, second[i].enqueue_cycle);
    EXPECT_EQ(first[i].task, second[i].task);
    EXPECT_EQ(first[i].tenant, second[i].tenant);
  }
}

}  // namespace
}  // namespace mann::serve
