#include "serve/batcher.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "serve_test_util.hpp"

namespace mann::serve {
namespace {

using testing::make_request;
using testing::tiny_stories;

BatcherConfig small_config() {
  BatcherConfig config;
  config.max_batch = 4;
  config.max_wait_cycles = 100;
  config.queue_capacity = 8;
  return config;
}

TEST(Batcher, RejectsBadConstruction) {
  EXPECT_THROW(Batcher(small_config(), 0), std::invalid_argument);
  BatcherConfig zero_batch = small_config();
  zero_batch.max_batch = 0;
  EXPECT_THROW(Batcher(zero_batch, 1), std::invalid_argument);
}

TEST(Batcher, EmptyQueuePollsNothing) {
  Batcher batcher(small_config(), 2);
  EXPECT_EQ(batcher.pending(), 0U);
  EXPECT_FALSE(batcher.poll(0).has_value());
  EXPECT_FALSE(batcher.poll(1'000'000).has_value());
  EXPECT_FALSE(batcher.drain(0).has_value());
  EXPECT_EQ(batcher.next_deadline(), sim::kNever);
}

TEST(Batcher, SingleRequestWaitsForTimeout) {
  const auto stories = tiny_stories(1);
  Batcher batcher(small_config(), 1);
  ASSERT_TRUE(batcher.enqueue(make_request(0, 0, stories[0], 10)));

  // Below max_batch and younger than max_wait: held back.
  EXPECT_FALSE(batcher.poll(10).has_value());
  EXPECT_FALSE(batcher.poll(109).has_value());
  EXPECT_EQ(batcher.next_deadline(), 110U);

  // Oldest request aged out: flushed even at batch size 1.
  const auto batch = batcher.poll(110);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 1U);
  EXPECT_EQ(batch->task, 0U);
  EXPECT_EQ(batch->requests[0].id, 0U);
  EXPECT_EQ(batcher.counters().flush_timeout, 1U);
  EXPECT_EQ(batcher.counters().flush_full, 0U);
  EXPECT_EQ(batcher.pending(), 0U);
}

TEST(Batcher, FlushesOnFullBeforeTimeout) {
  const auto stories = tiny_stories(6);
  Batcher batcher(small_config(), 1);
  for (std::size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(batcher.enqueue(
        make_request(i, 0, stories[i], static_cast<sim::Cycle>(i))));
  }

  // Queue holds 6 >= max_batch(4): an immediate poll flushes exactly 4,
  // oldest first, with no waiting.
  const auto batch = batcher.poll(6);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 4U);
  EXPECT_EQ(batch->requests.front().id, 0U);
  EXPECT_EQ(batch->requests.back().id, 3U);
  EXPECT_EQ(batcher.counters().flush_full, 1U);
  EXPECT_EQ(batcher.pending(), 2U);

  // The remaining 2 are below max_batch: they wait for the timeout.
  EXPECT_FALSE(batcher.poll(6).has_value());
  const auto tail = batcher.poll(4 + 100);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->size(), 2U);
  EXPECT_EQ(batcher.counters().flush_timeout, 1U);
}

TEST(Batcher, BatchCarriesStoriesInRequestOrder) {
  const auto stories = tiny_stories(4);
  Batcher batcher(small_config(), 1);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(batcher.enqueue(make_request(i, 0, stories[i], 0)));
  }
  const auto batch = batcher.poll(0);
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->stories.size(), batch->requests.size());
  for (std::size_t i = 0; i < batch->size(); ++i) {
    EXPECT_EQ(batch->stories[i].answer, stories[i].answer);
  }
}

TEST(Batcher, KeepsTasksSeparate) {
  const auto stories = tiny_stories(8);
  Batcher batcher(small_config(), 2);
  // Interleave two tasks; each flush must be single-task.
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(batcher.enqueue(make_request(i, i % 2, stories[i], 0)));
  }
  const auto first = batcher.poll(0);
  const auto second = batcher.poll(0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(first->task, second->task);
  for (const auto& batch : {*first, *second}) {
    EXPECT_EQ(batch.size(), 4U);
    for (const auto& request : batch.requests) {
      EXPECT_EQ(request.task, batch.task);
    }
  }
}

TEST(Batcher, ShedsWhenQueueFull) {
  const auto stories = tiny_stories(10);
  Batcher batcher(small_config(), 1);  // capacity 8
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(batcher.enqueue(make_request(i, 0, stories[i], 0)));
  }
  EXPECT_FALSE(batcher.enqueue(make_request(8, 0, stories[8], 0)));
  EXPECT_FALSE(batcher.enqueue(make_request(9, 0, stories[9], 0)));
  EXPECT_EQ(batcher.counters().requests_in, 8U);
  EXPECT_EQ(batcher.counters().requests_rejected, 2U);
  EXPECT_EQ(batcher.queue_stats().full_rejects, 2U);
}

TEST(Batcher, DrainFlushesRegardlessOfAge) {
  const auto stories = tiny_stories(3);
  Batcher batcher(small_config(), 2);
  ASSERT_TRUE(batcher.enqueue(make_request(0, 0, stories[0], 50)));
  ASSERT_TRUE(batcher.enqueue(make_request(1, 1, stories[1], 50)));
  ASSERT_TRUE(batcher.enqueue(make_request(2, 1, stories[2], 50)));

  EXPECT_FALSE(batcher.poll(50).has_value());  // nothing full or aged
  const auto first = batcher.drain(50);
  const auto second = batcher.drain(50);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->size() + second->size(), 3U);
  EXPECT_EQ(batcher.counters().flush_drain, 2U);
  EXPECT_EQ(batcher.pending(), 0U);
  EXPECT_FALSE(batcher.drain(50).has_value());
}

TEST(Batcher, RejectsUnknownTaskAndNullStory) {
  const auto stories = tiny_stories(1);
  Batcher batcher(small_config(), 1);
  EXPECT_THROW((void)batcher.enqueue(make_request(0, 5, stories[0], 0)),
               std::out_of_range);
  InferenceRequest null_story = make_request(0, 0, stories[0], 0);
  null_story.story = nullptr;
  EXPECT_THROW((void)batcher.enqueue(null_story), std::invalid_argument);
}

TEST(Batcher, DeadlineTracksOldestAcrossTasks) {
  const auto stories = tiny_stories(2);
  Batcher batcher(small_config(), 2);
  ASSERT_TRUE(batcher.enqueue(make_request(0, 1, stories[0], 30)));
  ASSERT_TRUE(batcher.enqueue(make_request(1, 0, stories[1], 20)));
  EXPECT_EQ(batcher.next_deadline(), 120U);  // task 0's head is oldest
}

InferenceRequest tenant_request(RequestId id, std::size_t task,
                                TenantId tenant,
                                const data::EncodedStory& story,
                                sim::Cycle enqueue) {
  InferenceRequest request = make_request(id, task, story, enqueue);
  request.tenant = tenant;
  return request;
}

TEST(Batcher, TenantsBatchInSeparateLanes) {
  // Same task, different tenants: each flushes as its own batch (tenant
  // isolation starts at queueing), stamped with its tenant id.
  const auto stories = tiny_stories(4);
  Batcher batcher(small_config(), 1, /*num_tenants=*/2);
  ASSERT_TRUE(batcher.enqueue(tenant_request(0, 0, 0, stories[0], 10)));
  ASSERT_TRUE(batcher.enqueue(tenant_request(1, 0, 1, stories[1], 10)));
  ASSERT_TRUE(batcher.enqueue(tenant_request(2, 0, 0, stories[2], 10)));

  EXPECT_EQ(batcher.pending(), 3U);
  const auto first = batcher.drain(10);
  const auto second = batcher.drain(10);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->task, 0U);
  EXPECT_EQ(second->task, 0U);
  EXPECT_EQ(first->tenant, 0U);
  EXPECT_EQ(second->tenant, 1U);
  EXPECT_EQ(first->size(), 2U);
  EXPECT_EQ(second->size(), 1U);
  for (const InferenceRequest& r : first->requests) {
    EXPECT_EQ(r.tenant, 0U);
  }
}

TEST(Batcher, TenantLaneFullFlushesIndependently) {
  // One tenant's full lane flushes while the other tenant keeps waiting
  // for its own timeout — no cross-tenant coupling.
  const auto stories = tiny_stories(8);
  Batcher batcher(small_config(), 1, /*num_tenants=*/2);  // max_batch 4
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(batcher.enqueue(tenant_request(i, 0, 1, stories[i], 10)));
  }
  ASSERT_TRUE(batcher.enqueue(tenant_request(9, 0, 0, stories[4], 10)));

  const auto batch = batcher.poll(10);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->tenant, 1U);
  EXPECT_EQ(batch->size(), 4U);
  EXPECT_FALSE(batcher.poll(10).has_value());  // tenant 0 still waiting
  EXPECT_EQ(batcher.pending(), 1U);
}

TEST(Batcher, RejectsUnknownTenant) {
  const auto stories = tiny_stories(1);
  Batcher batcher(small_config(), 1, /*num_tenants=*/2);
  EXPECT_THROW((void)batcher.enqueue(tenant_request(0, 0, 2, stories[0], 0)),
               std::out_of_range);
  EXPECT_THROW(Batcher(small_config(), 1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mann::serve
