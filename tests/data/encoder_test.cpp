#include "data/encoder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mann::data {
namespace {

Story tiny_story() {
  Story s;
  s.context = {{"mary", "went", "to", "the", "kitchen"},
               {"john", "went", "to", "the", "garden"}};
  s.question = {"where", "is", "mary"};
  s.answer = "kitchen";
  return s;
}

TEST(Encoder, VocabCoversEveryToken) {
  Vocab v;
  add_story_to_vocab(tiny_story(), v);
  for (const char* w :
       {"mary", "went", "to", "the", "kitchen", "john", "garden", "where",
        "is"}) {
    EXPECT_TRUE(v.find(w).has_value()) << w;
  }
}

TEST(Encoder, EncodePreservesStructure) {
  Vocab v;
  const Story s = tiny_story();
  add_story_to_vocab(s, v);
  const EncodedStory enc = encode_story(s, v);
  ASSERT_EQ(enc.context.size(), 2U);
  EXPECT_EQ(enc.context[0].size(), 5U);
  EXPECT_EQ(enc.question.size(), 3U);
  // Round-trip each token.
  for (std::size_t i = 0; i < s.context.size(); ++i) {
    for (std::size_t j = 0; j < s.context[i].size(); ++j) {
      EXPECT_EQ(v.word(enc.context[i][j]), s.context[i][j]);
    }
  }
  EXPECT_EQ(v.word(enc.answer), "kitchen");
}

TEST(Encoder, UnknownTokenThrows) {
  Vocab v;
  v.add("a");
  Story s;
  s.context = {{"a"}};
  s.question = {"mystery"};
  s.answer = "a";
  EXPECT_THROW((void)encode_story(s, v), std::out_of_range);
}

TEST(Encoder, BatchEncodingMatchesSingle) {
  Vocab v;
  const Story s = tiny_story();
  add_story_to_vocab(s, v);
  const auto batch = encode_stories({s, s}, v);
  ASSERT_EQ(batch.size(), 2U);
  EXPECT_EQ(batch[0].answer, batch[1].answer);
  EXPECT_EQ(batch[0].context, batch[1].context);
}

}  // namespace
}  // namespace mann::data
