#include "data/world.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mann::data {
namespace {

World make_world() {
  return World({"mary", "john"}, {"kitchen", "garden", "office"},
               {"apple", "ball"});
}

TEST(World, UnknownNamesRejected) {
  World w = make_world();
  EXPECT_THROW(w.move("ghost", "kitchen"), std::invalid_argument);
  EXPECT_THROW(w.move("mary", "moon"), std::invalid_argument);
  EXPECT_THROW(w.grab("mary", "sword"), std::invalid_argument);
}

TEST(World, MoveTracksLocation) {
  World w = make_world();
  EXPECT_FALSE(w.actor_location("mary").has_value());
  w.move("mary", "kitchen");
  EXPECT_EQ(w.actor_location("mary").value(), "kitchen");
  w.move("mary", "garden");
  EXPECT_EQ(w.actor_location("mary").value(), "garden");
}

TEST(World, GrabAndHolder) {
  World w = make_world();
  w.move("mary", "kitchen");
  w.grab("mary", "apple");
  EXPECT_EQ(w.holder("apple").value(), "mary");
  EXPECT_EQ(w.object_location("apple").value(), "kitchen");
}

TEST(World, DoubleGrabIsBug) {
  World w = make_world();
  w.move("mary", "kitchen");
  w.move("john", "kitchen");
  w.grab("mary", "apple");
  EXPECT_THROW(w.grab("john", "apple"), std::logic_error);
}

TEST(World, HeldObjectTravelsWithActor) {
  World w = make_world();
  w.move("mary", "kitchen");
  w.grab("mary", "apple");
  w.move("mary", "office");
  EXPECT_EQ(w.object_location("apple").value(), "office");
}

TEST(World, DropLeavesObjectBehind) {
  World w = make_world();
  w.move("mary", "kitchen");
  w.grab("mary", "apple");
  w.move("mary", "garden");
  w.drop("mary", "apple");
  w.move("mary", "office");
  EXPECT_EQ(w.object_location("apple").value(), "garden");
  EXPECT_FALSE(w.holder("apple").has_value());
}

TEST(World, DropRequiresPossession) {
  World w = make_world();
  w.move("john", "kitchen");
  EXPECT_THROW(w.drop("john", "apple"), std::logic_error);
}

TEST(World, GiveTransfersPossession) {
  World w = make_world();
  w.move("mary", "kitchen");
  w.move("john", "kitchen");
  w.grab("mary", "apple");
  w.give("mary", "john", "apple");
  EXPECT_EQ(w.holder("apple").value(), "john");
  EXPECT_TRUE(w.carried("mary").empty());
  ASSERT_EQ(w.carried("john").size(), 1U);
  EXPECT_EQ(w.carried("john")[0], "apple");
}

TEST(World, GiveRequiresPossession) {
  World w = make_world();
  EXPECT_THROW(w.give("mary", "john", "apple"), std::logic_error);
}

TEST(World, CarriedPreservesPickupOrder) {
  World w = make_world();
  w.move("mary", "kitchen");
  w.grab("mary", "ball");
  w.grab("mary", "apple");
  const auto held = w.carried("mary");
  ASSERT_EQ(held.size(), 2U);
  EXPECT_EQ(held[0], "ball");
  EXPECT_EQ(held[1], "apple");
}

TEST(World, ObjectHistoryDistinctOldestFirst) {
  World w = make_world();
  w.move("mary", "kitchen");
  w.grab("mary", "apple");
  w.move("mary", "garden");
  w.move("mary", "office");
  w.drop("mary", "apple");
  const auto hist = w.object_location_history("apple");
  ASSERT_EQ(hist.size(), 3U);
  EXPECT_EQ(hist[0], "kitchen");
  EXPECT_EQ(hist[1], "garden");
  EXPECT_EQ(hist[2], "office");
}

TEST(World, ActorHistorySkipsRepeats) {
  World w = make_world();
  w.move("john", "kitchen");
  w.move("john", "kitchen");
  w.move("john", "garden");
  const auto hist = w.actor_location_history("john");
  ASSERT_EQ(hist.size(), 2U);
  EXPECT_EQ(hist[0], "kitchen");
  EXPECT_EQ(hist[1], "garden");
}

}  // namespace
}  // namespace mann::data
