// Distributional properties of the task generators: a learnable QA task
// needs balanced answers (no degenerate majority class) and stable
// vocabulary across seeds (the closed world really is closed).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "data/dataset.hpp"
#include "data/encoder.hpp"

namespace mann::data {
namespace {

std::map<std::string, std::size_t> answer_counts(TaskId id,
                                                 std::size_t n,
                                                 std::uint64_t seed) {
  numeric::Rng rng(seed);
  std::map<std::string, std::size_t> counts;
  for (std::size_t i = 0; i < n; ++i) {
    ++counts[generate_story(id, rng).answer];
  }
  return counts;
}

TEST(Distribution, YesNoTasksAreRoughlyBalanced) {
  for (const TaskId id : {TaskId::kYesNoQuestions, TaskId::kSimpleNegation,
                          TaskId::kSizeReasoning,
                          TaskId::kPositionalReasoning}) {
    const auto counts = answer_counts(id, 600, 17);
    const double yes = static_cast<double>(counts.at("yes"));
    const double no = static_cast<double>(counts.at("no"));
    // Neither side exceeds ~2/3: a majority-class guesser cannot score
    // much above chance.
    EXPECT_LT(yes / (yes + no), 0.67) << task_name(id);
    EXPECT_GT(yes / (yes + no), 0.33) << task_name(id);
  }
}

TEST(Distribution, NoAnswerClassDominatesLocationTasks) {
  for (const TaskId id :
       {TaskId::kSingleSupportingFact, TaskId::kTwoSupportingFacts,
        TaskId::kBasicCoreference, TaskId::kConjunction}) {
    const auto counts = answer_counts(id, 800, 23);
    std::size_t max_count = 0;
    std::size_t total = 0;
    for (const auto& [answer, count] : counts) {
      max_count = std::max(max_count, count);
      total += count;
    }
    EXPECT_LT(static_cast<double>(max_count) / static_cast<double>(total),
              0.4)
        << task_name(id);
  }
}

TEST(Distribution, IndefiniteKnowledgeCoversAllThreeAnswers) {
  const auto counts = answer_counts(TaskId::kIndefiniteKnowledge, 600, 29);
  for (const char* answer : {"yes", "no", "maybe"}) {
    ASSERT_TRUE(counts.contains(answer)) << answer;
    EXPECT_GT(counts.at(answer), 60U) << answer;  // >= 10% each
  }
}

TEST(Distribution, CountingSkewsTowardSmallCounts) {
  const auto counts = answer_counts(TaskId::kCounting, 600, 31);
  // All four count words appear; the task is not constant.
  for (const char* answer : {"none", "one", "two", "three"}) {
    EXPECT_TRUE(counts.contains(answer)) << answer;
  }
}

TEST(Distribution, VocabularyStableAcrossSeeds) {
  // The closed world: different seeds generate different stories but the
  // same token inventory (up to rare tokens), so deployed vocabularies
  // do not drift.
  for (const TaskId id : {TaskId::kSingleSupportingFact,
                          TaskId::kPathFinding,
                          TaskId::kAgentsMotivations}) {
    auto vocab_of = [&](std::uint64_t seed) {
      numeric::Rng rng(seed);
      Vocab v;
      for (int i = 0; i < 400; ++i) {
        add_story_to_vocab(generate_story(id, rng), v);
      }
      std::set<std::string> words;
      for (std::size_t w = 0; w < v.size(); ++w) {
        words.insert(v.word(static_cast<std::int32_t>(w)));
      }
      return words;
    };
    const auto a = vocab_of(1);
    const auto b = vocab_of(2);
    // Symmetric difference must be tiny relative to the vocabulary.
    std::size_t diff = 0;
    for (const auto& w : a) {
      if (!b.contains(w)) {
        ++diff;
      }
    }
    for (const auto& w : b) {
      if (!a.contains(w)) {
        ++diff;
      }
    }
    EXPECT_LE(diff, a.size() / 10) << task_name(id);
  }
}

TEST(Distribution, JointVocabularyIsUnionOfTasks) {
  DatasetConfig dc;
  dc.train_stories = 20;
  dc.test_stories = 5;
  const auto joint = build_joint_suite(dc);
  std::set<std::string> joint_words;
  for (std::size_t w = 0; w < joint[0].vocab.size(); ++w) {
    joint_words.insert(joint[0].vocab.word(static_cast<std::int32_t>(w)));
  }
  for (const TaskId id : all_tasks()) {
    const TaskDataset solo = build_task_dataset(id, dc);
    for (std::size_t w = 0; w < solo.vocab.size(); ++w) {
      EXPECT_TRUE(joint_words.contains(
          solo.vocab.word(static_cast<std::int32_t>(w))))
          << task_name(id);
    }
  }
}

}  // namespace
}  // namespace mann::data
