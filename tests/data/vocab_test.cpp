#include "data/vocab.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace mann::data {
namespace {

TEST(Vocab, StartsEmpty) {
  const Vocab v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0U);
}

TEST(Vocab, AddAssignsDenseIndices) {
  Vocab v;
  EXPECT_EQ(v.add("alpha"), 0);
  EXPECT_EQ(v.add("beta"), 1);
  EXPECT_EQ(v.add("gamma"), 2);
  EXPECT_EQ(v.size(), 3U);
}

TEST(Vocab, AddIsIdempotent) {
  Vocab v;
  const auto first = v.add("word");
  const auto second = v.add("word");
  EXPECT_EQ(first, second);
  EXPECT_EQ(v.size(), 1U);
}

TEST(Vocab, FindKnownAndUnknown) {
  Vocab v;
  v.add("hello");
  EXPECT_EQ(v.find("hello").value(), 0);
  EXPECT_FALSE(v.find("world").has_value());
}

TEST(Vocab, AtThrowsForUnknown) {
  Vocab v;
  v.add("x");
  EXPECT_EQ(v.at("x"), 0);
  EXPECT_THROW((void)v.at("y"), std::out_of_range);
}

TEST(Vocab, WordRoundTrip) {
  Vocab v;
  v.add("one");
  v.add("two");
  EXPECT_EQ(v.word(0), "one");
  EXPECT_EQ(v.word(1), "two");
}

TEST(Vocab, WordBadIndexThrows) {
  Vocab v;
  v.add("only");
  EXPECT_THROW((void)v.word(1), std::out_of_range);
  EXPECT_THROW((void)v.word(-1), std::out_of_range);
}

TEST(Vocab, StreamRoundTripPreservesIndices) {
  Vocab v;
  v.add("alpha");
  v.add("beta");
  v.add("gamma");
  std::stringstream buffer;
  save_vocab(buffer, v);
  const Vocab loaded = load_vocab(buffer);
  ASSERT_EQ(loaded.size(), 3U);
  EXPECT_EQ(loaded.at("alpha"), 0);
  EXPECT_EQ(loaded.at("beta"), 1);
  EXPECT_EQ(loaded.at("gamma"), 2);
}

TEST(Vocab, FileRoundTrip) {
  Vocab v;
  v.add("kitchen");
  v.add("garden");
  const std::string path = ::testing::TempDir() + "/vocab_test.vocab";
  save_vocab_file(path, v);
  const Vocab loaded = load_vocab_file(path);
  EXPECT_EQ(loaded.size(), 2U);
  EXPECT_EQ(loaded.word(1), "garden");
}

TEST(Vocab, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_vocab_file("/nonexistent/v.vocab"),
               std::runtime_error);
}

}  // namespace
}  // namespace mann::data
