#include "data/dataset.hpp"

#include <gtest/gtest.h>

namespace mann::data {
namespace {

DatasetConfig small_config() {
  DatasetConfig c;
  c.train_stories = 40;
  c.test_stories = 10;
  c.seed = 5;
  return c;
}

TEST(Dataset, BuildsRequestedSplitSizes) {
  const TaskDataset ds =
      build_task_dataset(TaskId::kSingleSupportingFact, small_config());
  EXPECT_EQ(ds.train.size(), 40U);
  EXPECT_EQ(ds.test.size(), 10U);
  EXPECT_GT(ds.vocab_size(), 10U);
}

TEST(Dataset, DeterministicAcrossCalls) {
  const TaskDataset a =
      build_task_dataset(TaskId::kCounting, small_config());
  const TaskDataset b =
      build_task_dataset(TaskId::kCounting, small_config());
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].context, b.train[i].context);
    EXPECT_EQ(a.train[i].answer, b.train[i].answer);
  }
}

TEST(Dataset, SeedChangesData) {
  DatasetConfig c1 = small_config();
  DatasetConfig c2 = small_config();
  c2.seed = 6;
  const TaskDataset a = build_task_dataset(TaskId::kCounting, c1);
  const TaskDataset b = build_task_dataset(TaskId::kCounting, c2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.train.size() && !any_diff; ++i) {
    any_diff = a.train[i].context != b.train[i].context;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Dataset, StatsCountTokens) {
  const TaskDataset ds =
      build_task_dataset(TaskId::kSingleSupportingFact, small_config());
  const WorkloadStats st = compute_stats(ds.train);
  EXPECT_EQ(st.stories, 40U);
  EXPECT_GT(st.sentences, 40U);       // >1 sentence per story
  EXPECT_GT(st.context_words, st.sentences);  // >1 word per sentence
  EXPECT_GT(st.question_words, 0U);
  EXPECT_GE(st.max_sentences, 2U);
}

TEST(Dataset, JointSuiteSharesVocabulary) {
  DatasetConfig c = small_config();
  c.train_stories = 15;
  c.test_stories = 5;
  const auto suite = build_joint_suite(c);
  ASSERT_EQ(suite.size(), 20U);
  const std::size_t joint_size = suite[0].vocab_size();
  for (const TaskDataset& ds : suite) {
    EXPECT_EQ(ds.vocab_size(), joint_size);
  }
  // Joint vocabulary is strictly larger than any single task's.
  const TaskDataset solo =
      build_task_dataset(TaskId::kSingleSupportingFact, c);
  EXPECT_GT(joint_size, solo.vocab_size());
}

TEST(Dataset, JointSuiteEncodesSameStoriesAsPerTask) {
  // The underlying raw stories must be identical to the per-task build
  // (same generator streams); only the index mapping differs.
  DatasetConfig c = small_config();
  c.train_stories = 10;
  c.test_stories = 5;
  const auto suite = build_joint_suite(c);
  const TaskDataset solo = build_task_dataset(TaskId::kCounting, c);
  const TaskDataset& joint = suite[6];  // qa7 is index 6
  ASSERT_EQ(joint.id, TaskId::kCounting);
  ASSERT_EQ(joint.train.size(), solo.train.size());
  // Compare decoded answers.
  for (std::size_t i = 0; i < joint.train.size(); ++i) {
    EXPECT_EQ(joint.vocab.word(joint.train[i].answer),
              solo.vocab.word(solo.train[i].answer));
  }
}

TEST(Dataset, StoriesFitDefaultMemory) {
  // All generated stories must fit the default 50-slot memory so no
  // truncation ambiguity exists between model and accelerator.
  for (const TaskId id : all_tasks()) {
    const TaskDataset ds = build_task_dataset(id, small_config());
    const WorkloadStats st = compute_stats(ds.train);
    EXPECT_LE(st.max_sentences, 50U) << task_name(id);
  }
}

}  // namespace
}  // namespace mann::data
