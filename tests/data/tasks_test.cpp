#include "data/tasks.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "numeric/random.hpp"

namespace mann::data {
namespace {

TEST(Tasks, AllTasksEnumerates20InOrder) {
  const auto& tasks = all_tasks();
  ASSERT_EQ(tasks.size(), 20U);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(task_number(tasks[static_cast<std::size_t>(i)]), i + 1);
  }
}

TEST(Tasks, TaskNamesAreUnique) {
  std::set<std::string> names;
  for (const TaskId id : all_tasks()) {
    names.insert(task_name(id));
  }
  EXPECT_EQ(names.size(), 20U);
}

// ---- Parameterized structural properties over all 20 task families ----

class TaskGeneration : public ::testing::TestWithParam<TaskId> {};

TEST_P(TaskGeneration, StoriesAreWellFormed) {
  numeric::Rng rng(100 + static_cast<std::uint64_t>(task_number(GetParam())));
  for (int i = 0; i < 200; ++i) {
    const Story s = generate_story(GetParam(), rng);
    EXPECT_FALSE(s.context.empty()) << task_name(GetParam());
    EXPECT_FALSE(s.question.empty());
    EXPECT_FALSE(s.answer.empty());
    for (const Sentence& sent : s.context) {
      EXPECT_FALSE(sent.empty());
      EXPECT_LE(sent.size(), 12U);  // short declarative sentences
      for (const std::string& w : sent) {
        EXPECT_FALSE(w.empty());
        for (const char c : w) {
          EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '_')
              << "token '" << w << "' in " << task_name(GetParam());
        }
      }
    }
  }
}

TEST_P(TaskGeneration, DeterministicGivenSeed) {
  numeric::Rng rng_a(7);
  numeric::Rng rng_b(7);
  for (int i = 0; i < 20; ++i) {
    const Story a = generate_story(GetParam(), rng_a);
    const Story b = generate_story(GetParam(), rng_b);
    EXPECT_EQ(a.context, b.context);
    EXPECT_EQ(a.question, b.question);
    EXPECT_EQ(a.answer, b.answer);
  }
}

TEST_P(TaskGeneration, StoriesVaryAcrossDraws) {
  numeric::Rng rng(11);
  std::set<std::string> distinct;
  for (int i = 0; i < 50; ++i) {
    const Story s = generate_story(GetParam(), rng);
    std::string key;
    for (const auto& sent : s.context) {
      for (const auto& w : sent) {
        key += w + " ";
      }
    }
    key += "| " + s.answer;
    distinct.insert(key);
  }
  EXPECT_GT(distinct.size(), 10U) << task_name(GetParam());
}

TEST_P(TaskGeneration, AnswerSpaceIsClosed) {
  // Answers must come from a bounded set (single-token labels), or
  // training/inference over a fixed output layer is impossible.
  numeric::Rng rng(13);
  std::set<std::string> answers;
  for (int i = 0; i < 500; ++i) {
    answers.insert(generate_story(GetParam(), rng).answer);
  }
  EXPECT_LE(answers.size(), 40U) << task_name(GetParam());
  EXPECT_GE(answers.size(), 2U) << task_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllTasks, TaskGeneration, ::testing::ValuesIn(all_tasks()),
    [](const ::testing::TestParamInfo<TaskId>& param_info) {
      return "qa" + std::to_string(task_number(param_info.param));
    });

// ---- Task-specific semantic checks (ground truth by construction) ----

TEST(TaskSemantics, Qa1AnswerIsALocation) {
  numeric::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Story s = generate_story(TaskId::kSingleSupportingFact, rng);
    EXPECT_EQ(s.question[0], "where");
    // Answer must appear somewhere in the context (the supporting fact).
    bool found = false;
    for (const auto& sent : s.context) {
      found |= std::find(sent.begin(), sent.end(), s.answer) != sent.end();
    }
    EXPECT_TRUE(found);
  }
}

TEST(TaskSemantics, Qa6AnswersAreYesNo) {
  numeric::Rng rng(6);
  std::set<std::string> answers;
  for (int i = 0; i < 200; ++i) {
    answers.insert(generate_story(TaskId::kYesNoQuestions, rng).answer);
  }
  EXPECT_EQ(answers, (std::set<std::string>{"yes", "no"}));
}

TEST(TaskSemantics, Qa7AnswersAreCounts) {
  numeric::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Story s = generate_story(TaskId::kCounting, rng);
    EXPECT_TRUE(s.answer == "none" || s.answer == "one" ||
                s.answer == "two" || s.answer == "three")
        << s.answer;
  }
}

TEST(TaskSemantics, Qa10IncludesMaybe) {
  numeric::Rng rng(10);
  std::set<std::string> answers;
  for (int i = 0; i < 300; ++i) {
    answers.insert(
        generate_story(TaskId::kIndefiniteKnowledge, rng).answer);
  }
  EXPECT_TRUE(answers.contains("maybe"));
  EXPECT_TRUE(answers.contains("yes"));
  EXPECT_TRUE(answers.contains("no"));
}

TEST(TaskSemantics, Qa19AnswersAreDirectionTokens) {
  numeric::Rng rng(19);
  const std::set<std::string> valid = {
      "north", "south", "east", "west",
      "north_east", "north_west", "south_east", "south_west"};
  for (int i = 0; i < 300; ++i) {
    const Story s = generate_story(TaskId::kPathFinding, rng);
    EXPECT_TRUE(valid.contains(s.answer)) << s.answer;
  }
}

TEST(TaskSemantics, Qa20MotivationQuestionsConsistent) {
  numeric::Rng rng(20);
  for (int i = 0; i < 200; ++i) {
    const Story s = generate_story(TaskId::kAgentsMotivations, rng);
    if (s.question[0] == "why") {
      EXPECT_TRUE(s.answer == "hungry" || s.answer == "sleepy" ||
                  s.answer == "bored" || s.answer == "thirsty");
    } else {
      EXPECT_EQ(s.question[0], "where");
    }
  }
}

}  // namespace
}  // namespace mann::data
